package dist

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/sweep"
)

// jobState is one job's position in the pending → leased → done walk.
// A leased job whose lease expires returns to pending; done is terminal
// (a later duplicate delivery is absorbed as a dedup, never a state
// change). Quarantined is the second terminal state: the job's leases
// failed too often across distinct workers, so the coordinator excludes
// it — the sweep completes without it instead of wedging.
type jobState int

const (
	statePending jobState = iota
	stateLeased
	stateDone
	stateQuarantined
)

// lease is one live grant: a bounded set of job indices owned by one
// worker until expiry.
type lease struct {
	id         string
	worker     string
	jobs       []int // indices into tracker.jobs
	granted    time.Time
	expiry     time.Time
	speculated bool // straggler policy already re-granted this lease's jobs
}

// strike accumulates lease failures for one job: expiries and terminal
// failure deliveries, with the workers that were holding the job.
type strike struct {
	count   int
	workers map[string]bool
}

// trackerPolicy is the supervision configuration: when to quarantine a
// job and when to speculatively re-execute a straggler's range.
type trackerPolicy struct {
	// quarantineAfter quarantines a job once its leases have failed
	// (expired or delivered a terminal failure) this many times across
	// at least two distinct workers — or twice this many times total,
	// so a single-worker fleet cannot wedge on a poison job either.
	// 0 disables quarantine: a terminal failure delivery completes the
	// job as a failure record immediately (the pre-quarantine behavior).
	quarantineAfter int
	// speculateFactor re-grants a still-renewing lease's unfinished jobs
	// once its age exceeds max(ttl, factor × p95 completed-lease
	// duration) — the original worker keeps its lease and its eventual
	// upload still merges (first write wins), but a second worker races
	// it. <= 0 disables speculation.
	speculateFactor float64
	// speculateMinLeases is how many completed leases the p95 needs
	// before speculation trusts it.
	speculateMinLeases int
}

// durationWindow bounds the straggler-p95 sample to the most recent
// completed leases. A long sweep completes tens of thousands of leases;
// an unbounded history both grows without limit and drags the p95
// toward stale early-sweep timings, making speculation blind to a
// fleet that has slowed down.
const durationWindow = 256

// journalFn receives durable state transitions: a journal record key
// (lease/<id>, strike/<key>, quarantine/<key>) and its wire value. It
// is called with the tracker lock held, in state-transition order. Nil
// disables journaling.
type journalFn func(key string, v any)

// tracker is the coordinator's in-memory job ledger. All methods are
// safe for concurrent use; expiry and straggler detection are lazy —
// every entry point first sweeps expired leases back to pending and
// re-grants stragglers' jobs, so no background timer is needed and
// tests can drive time through the now hook.
type tracker struct {
	mu    sync.Mutex
	jobs  []sweep.Job
	keys  []string       // content key per job, parallel to jobs
	byKey map[string]int // key → job index
	state []jobState
	owner []string // lease ID currently responsible for a leased job

	leases   map[string]*lease
	leaseSeq int

	pending int
	done    int
	failed  map[int]sweep.Result // terminal failures, by job index

	strikes     map[int]*strike
	quarantined map[int]QuarantineRecord

	durations  []time.Duration // ring of recent completed-lease durations, for the straggler p95
	durTotal   int             // completed leases ever; write cursor is durTotal % durationWindow
	durScratch []time.Duration // reused p95 sort buffer, so the hot path stops allocating

	ttl    time.Duration
	chunk  int
	now    func() time.Time
	policy trackerPolicy

	journal journalFn // nil during rebuild and in non-durable coordinators

	doneCh   chan struct{}
	complete bool

	// Counters surfaced on /metrics.
	granted    uint64 // leases handed out
	renewed    uint64 // heartbeat renewals honored
	expired    uint64 // leases reclaimed after TTL lapse
	speculated uint64 // jobs re-granted past a straggling (still-renewing) lease
}

func newTracker(jobs []sweep.Job, keys []string, ttl time.Duration, chunk int, now func() time.Time) *tracker {
	t := &tracker{
		jobs:        jobs,
		keys:        keys,
		byKey:       make(map[string]int, len(jobs)),
		state:       make([]jobState, len(jobs)),
		owner:       make([]string, len(jobs)),
		leases:      make(map[string]*lease),
		pending:     len(jobs),
		failed:      make(map[int]sweep.Result),
		strikes:     make(map[int]*strike),
		quarantined: make(map[int]QuarantineRecord),
		ttl:         ttl,
		chunk:       chunk,
		now:         now,
		doneCh:      make(chan struct{}),
	}
	for i, k := range keys {
		// Duplicate content keys (same cell repeated in a degenerate
		// sweep shape) map to the first index; the merge path treats the
		// extras as dedups.
		if _, ok := t.byKey[k]; !ok {
			t.byKey[k] = i
		}
	}
	if len(jobs) == 0 {
		t.complete = true
		close(t.doneCh)
	}
	return t
}

// finishedLocked is the completion count: delivered plus quarantined.
func (t *tracker) finishedLocked() int { return t.done + len(t.quarantined) }

func (t *tracker) checkCompleteLocked() {
	if t.finishedLocked() == len(t.jobs) && !t.complete {
		t.complete = true
		close(t.doneCh)
	}
}

// markDoneLocked records a job as finished regardless of its current
// state (a result can arrive for a job whose lease already expired and
// was even re-leased elsewhere — the work is done either way).
// Quarantined jobs stay quarantined: a late delivery still merged its
// result into the store, but the scheduling verdict stands.
func (t *tracker) markDoneLocked(idx int) bool {
	switch t.state[idx] {
	case stateDone, stateQuarantined:
		return false
	case statePending:
		t.pending--
	}
	t.state[idx] = stateDone
	t.owner[idx] = ""
	t.done++
	t.checkCompleteLocked()
	return true
}

// strikeLocked charges one lease failure against a job and either
// quarantines it (threshold reached) or returns it to pending. Caller
// has already detached the job from its lease (state is transitioning
// out of stateLeased).
func (t *tracker) strikeLocked(idx int, worker string) {
	s := t.strikes[idx]
	if s == nil {
		s = &strike{workers: make(map[string]bool)}
		t.strikes[idx] = s
	}
	s.count++
	s.workers[worker] = true
	t.journalPutLocked(journalPrefixStrike+t.keys[idx], StrikeRecord{Count: s.count, Workers: sortedWorkers(s.workers)})

	n := t.policy.quarantineAfter
	if n > 0 && ((s.count >= n && len(s.workers) >= 2) || s.count >= 2*n) {
		t.quarantineLocked(idx, s)
		return
	}
	t.state[idx] = statePending
	t.owner[idx] = ""
	t.pending++
}

// quarantineLocked moves a job into the quarantined terminal state and
// journals the structured record.
func (t *tracker) quarantineLocked(idx int, s *strike) {
	j := t.jobs[idx]
	rec := QuarantineRecord{
		Key:       t.keys[idx],
		Benchmark: j.Benchmark,
		Scenario:  j.Scenario.String(),
		Mode:      j.Mode.String(),
		Seed:      j.Seed,
		Strikes:   s.count,
		Workers:   sortedWorkers(s.workers),
	}
	t.state[idx] = stateQuarantined
	t.owner[idx] = ""
	t.quarantined[idx] = rec
	t.journalPutLocked(journalPrefixQuarant+t.keys[idx], rec)
	t.checkCompleteLocked()
}

func sortedWorkers(ws map[string]bool) []string {
	out := make([]string, 0, len(ws))
	for w := range ws {
		out = append(out, w)
	}
	sort.Strings(out)
	return out
}

func (t *tracker) journalPutLocked(key string, v any) {
	if t.journal != nil {
		t.journal(key, v)
	}
}

func (t *tracker) journalLeaseLocked(l *lease, released bool) {
	if t.journal == nil {
		return
	}
	keys := make([]string, len(l.jobs))
	for i, idx := range l.jobs {
		keys[i] = t.keys[idx]
	}
	t.journal(journalPrefixLease+l.id, LeaseRecord{
		Worker:    l.worker,
		Keys:      keys,
		GrantedMs: l.granted.UnixMilli(),
		ExpiryMs:  l.expiry.UnixMilli(),
		Released:  released,
	})
}

// expireLocked reclaims every lease past its deadline: each unfinished
// job still owned by the dying lease takes a strike (quarantining it at
// the threshold) or returns to pending. It then runs the straggler
// sweep, so every tracker entry point applies both policies.
func (t *tracker) expireLocked() {
	now := t.now()
	for id, l := range t.leases {
		if l.expiry.After(now) {
			continue
		}
		delete(t.leases, id)
		t.expired++
		for _, idx := range l.jobs {
			if t.state[idx] == stateLeased && t.owner[idx] == id {
				t.strikeLocked(idx, l.worker)
			}
		}
	}
	t.speculateLocked(now)
}

// speculateLocked re-grants the unfinished jobs of stragglers: leases
// that keep renewing (so never expire) but have outlived
// max(ttl, factor × p95 completed-lease duration). The lease itself
// survives — its worker keeps computing and its upload still merges
// first-write-wins — but its jobs return to pending so another worker
// can race it. Duplicate execution is safe by construction
// (store.Merge dedups), so a false positive costs one redundant
// computation, never a wrong result.
func (t *tracker) speculateLocked(now time.Time) {
	f := t.policy.speculateFactor
	if f <= 0 || t.durTotal < t.policy.speculateMinLeases {
		return
	}
	threshold := time.Duration(f * float64(t.p95Locked()))
	if threshold < t.ttl {
		threshold = t.ttl
	}
	for id, l := range t.leases {
		if l.speculated || now.Sub(l.granted) <= threshold {
			continue
		}
		l.speculated = true
		for _, idx := range l.jobs {
			if t.state[idx] == stateLeased && t.owner[idx] == id {
				t.state[idx] = statePending
				t.owner[idx] = ""
				t.pending++
				t.speculated++
			}
		}
	}
}

// recordDurationLocked pushes a completed-lease duration into the
// bounded ring feeding the straggler p95, evicting the oldest sample
// once durationWindow leases have completed.
func (t *tracker) recordDurationLocked(d time.Duration) {
	if len(t.durations) < durationWindow {
		t.durations = append(t.durations, d)
	} else {
		t.durations[t.durTotal%durationWindow] = d
	}
	t.durTotal++
}

// p95Locked is the 95th-percentile completed-lease duration over the
// ring window. It sorts a reused scratch copy: the ring itself must
// stay in insertion order so eviction replaces the oldest sample, not
// an arbitrary one.
func (t *tracker) p95Locked() time.Duration {
	ds := append(t.durScratch[:0], t.durations...)
	t.durScratch = ds
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	i := (len(ds)*95 + 99) / 100
	if i > 0 {
		i--
	}
	return ds[i]
}

// releaseLocked tears a lease down after a successful upload: jobs the
// worker did not deliver (a partial upload after losing the race to a
// reassignment, or a deliberate abandon) go straight back to pending
// instead of waiting out the TTL. The lease's lifetime feeds the
// straggler p95.
func (t *tracker) releaseLocked(id string) {
	l, ok := t.leases[id]
	if !ok {
		return
	}
	delete(t.leases, id)
	t.recordDurationLocked(t.now().Sub(l.granted))
	for _, idx := range l.jobs {
		if t.state[idx] == stateLeased && t.owner[idx] == id {
			t.state[idx] = statePending
			t.owner[idx] = ""
			t.pending++
		}
	}
	t.journalLeaseLocked(l, true)
}

// grant hands out up to chunk pending jobs under a fresh lease. It
// returns (nil, true) when the sweep is complete and (nil, false) when
// everything left is leased to someone else — the caller should poll
// again.
func (t *tracker) grant(worker string) (*lease, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.expireLocked()
	if t.complete {
		return nil, true
	}
	if t.pending == 0 {
		return nil, false
	}
	now := t.now()
	t.leaseSeq++
	l := &lease{
		id:      fmt.Sprintf("lease-%d", t.leaseSeq),
		worker:  worker,
		granted: now,
		expiry:  now.Add(t.ttl),
	}
	for idx := range t.jobs {
		if t.state[idx] != statePending {
			continue
		}
		t.state[idx] = stateLeased
		t.owner[idx] = l.id
		t.pending--
		l.jobs = append(l.jobs, idx)
		if len(l.jobs) == t.chunk {
			break
		}
	}
	t.leases[l.id] = l
	t.granted++
	t.journalLeaseLocked(l, false)
	return l, false
}

// renew extends a lease's deadline. False means the lease is gone —
// expired and possibly reassigned — and the worker should abandon the
// range (its eventual upload is still accepted and deduped). A renewal
// arriving at exactly the TTL boundary loses: expiry is exclusive, so
// the race between renew and lazy expiry resolves definitively — the
// worker observes lease-lost, never a silent double grant.
func (t *tracker) renew(id string) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.expireLocked()
	l, ok := t.leases[id]
	if !ok {
		return false
	}
	l.expiry = t.now().Add(t.ttl)
	t.renewed++
	t.journalLeaseLocked(l, false)
	return true
}

// jobIndex resolves an uploaded content key to its job index.
func (t *tracker) jobIndex(key string) (int, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	idx, ok := t.byKey[key]
	return idx, ok
}

// markDone records a delivered result and returns whether it was the
// first delivery. A terminal failure is remembered (for the summary)
// but the caller must not journal it.
func (t *tracker) markDone(idx int, failure *sweep.Result) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	first := t.markDoneLocked(idx)
	if failure != nil && first {
		t.failed[idx] = *failure
	}
	return first
}

// markFailed handles a delivered terminal-failure record. With
// quarantine off it completes the job as a failure, exactly as before.
// With quarantine on it charges a strike instead: the job returns to
// pending so a different worker retries it, and only the quarantine
// threshold makes the failure terminal — one worker's broken
// environment cannot fail a job the rest of the fleet could compute.
func (t *tracker) markFailed(idx int, worker string, failure *sweep.Result) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.policy.quarantineAfter <= 0 {
		if t.markDoneLocked(idx) && failure != nil {
			t.failed[idx] = *failure
		}
		return
	}
	switch t.state[idx] {
	case stateDone, stateQuarantined:
		return
	case statePending:
		// Already back in the pool (the delivering lease expired first);
		// still counts as a failed execution.
		t.pending--
	}
	t.strikeLocked(idx, worker)
}

// release is the exported form of releaseLocked.
func (t *tracker) release(id string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.releaseLocked(id)
}

// status snapshots progress for /dist/v1/status and /metrics.
func (t *tracker) status() StatusResponse {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.expireLocked()
	leased := 0
	for _, s := range t.state {
		if s == stateLeased {
			leased++
		}
	}
	return StatusResponse{
		Total:       len(t.jobs),
		Done:        t.done,
		Pending:     t.pending,
		Leased:      leased,
		Failed:      len(t.failed),
		Quarantined: len(t.quarantined),
		Workers:     len(t.leases),
		Complete:    t.complete,
	}
}

// counters snapshots the lease counters for /metrics.
func (t *tracker) counters() (granted, renewed, expired, speculated uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.granted, t.renewed, t.expired, t.speculated
}

// quarantineRecords snapshots the quarantine ledger by job index.
func (t *tracker) quarantineRecords() map[int]QuarantineRecord {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[int]QuarantineRecord, len(t.quarantined))
	for i, r := range t.quarantined {
		out[i] = r
	}
	return out
}

// ---------------------------------------------------------------------
// Journal rebuild. Called by NewCoordinator before the tracker serves
// requests (and before t.journal is attached, so replay never
// re-journals itself).

// restoreStrike reloads one job's strike count from the journal.
func (t *tracker) restoreStrike(idx int, rec StrikeRecord) {
	s := &strike{count: rec.Count, workers: make(map[string]bool, len(rec.Workers))}
	for _, w := range rec.Workers {
		s.workers[w] = true
	}
	t.strikes[idx] = s
}

// restoreQuarantine reloads one quarantined job. Jobs already done
// (their result reached the store before or after the verdict) stay
// done — the result is real even if the scheduler gave up on the job.
func (t *tracker) restoreQuarantine(idx int, rec QuarantineRecord) {
	if t.state[idx] == stateDone {
		return
	}
	if t.state[idx] == statePending {
		t.pending--
	}
	t.state[idx] = stateQuarantined
	t.owner[idx] = ""
	t.quarantined[idx] = rec
	t.checkCompleteLocked()
}

// restoreLease reloads one live lease: same worker, same ID, original
// grant time and expiry. Jobs already finished are skipped; a lease
// whose jobs all finished is still honored so the worker's heartbeats
// and final upload land normally. Expired or released records are the
// caller's to skip.
func (t *tracker) restoreLease(id string, rec LeaseRecord) {
	l := &lease{
		id:      id,
		worker:  rec.Worker,
		granted: time.UnixMilli(rec.GrantedMs),
		expiry:  time.UnixMilli(rec.ExpiryMs),
	}
	for _, k := range rec.Keys {
		idx, ok := t.byKey[k]
		if !ok || t.state[idx] != statePending {
			continue
		}
		t.state[idx] = stateLeased
		t.owner[idx] = id
		t.pending--
		l.jobs = append(l.jobs, idx)
	}
	t.leases[id] = l
	t.bumpLeaseSeqLocked(id)
}

// bumpLeaseSeqLocked keeps fresh lease IDs unique past a journaled one:
// reusing a dead lease's ID would let its orphaned worker renew someone
// else's grant.
func (t *tracker) bumpLeaseSeqLocked(id string) {
	var n int
	if _, err := fmt.Sscanf(id, "lease-%d", &n); err == nil && n > t.leaseSeq {
		t.leaseSeq = n
	}
}
