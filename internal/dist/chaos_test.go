package dist

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/expt"
	"repro/internal/faults"
	"repro/internal/store"
	"repro/internal/sweep"
)

// chaosSweep is the shared job matrix: 8 jobs, so a chunk of 2 yields
// at least 4 leases and real contention between workers.
func chaosSweep() sweep.Options {
	opt := sweep.DefaultOptions()
	opt.Benchmarks = []string{"c17", "rca4"}
	opt.Scenarios = []expt.Scenario{expt.ScenarioA, expt.ScenarioB}
	opt.Seeds = []int64{1, 2}
	opt.Simulate = false // the S column costs simulation time the protocol tests don't need
	return opt
}

// normalizeResults zeroes the timing field — the only legitimate
// difference between a distributed and a single-process run.
func normalizeResults(rs []sweep.Result) []sweep.Result {
	out := make([]sweep.Result, len(rs))
	copy(out, rs)
	for i := range out {
		out[i].ElapsedMS = 0
	}
	return out
}

// TestDistributedMatchesSingleProcess is the no-faults baseline: three
// workers sharding the sweep produce exactly the single-process result
// set.
func TestDistributedMatchesSingleProcess(t *testing.T) {
	opt := chaosSweep()
	clean, err := sweep.Run(context.Background(), opt)
	if err != nil {
		t.Fatal(err)
	}

	c, ts, _ := newTestCoordinator(t, opt, 5*time.Second, 2)
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			stats, err := RunWorker(context.Background(), WorkerConfig{
				Coordinator: ts.URL,
				ID:          fmt.Sprintf("w%d", id),
				RPCBackoff:  5 * time.Millisecond,
			})
			if err != nil {
				t.Errorf("worker %d: %v (%+v)", id, err, stats)
			}
		}(i)
	}
	wg.Wait()

	select {
	case <-c.Done():
	default:
		t.Fatalf("workers exited but sweep incomplete: %+v", c.Status())
	}
	got, err := c.Summary()
	if err != nil {
		t.Fatal(err)
	}
	if got.Failed != 0 || clean.Failed != 0 {
		t.Fatalf("failures: distributed %d, clean %d, want 0", got.Failed, clean.Failed)
	}
	if !reflect.DeepEqual(normalizeResults(got.Results), normalizeResults(clean.Results)) {
		t.Fatalf("distributed results diverged from single-process run:\n%+v\nvs\n%+v",
			got.Results, clean.Results)
	}
	if !reflect.DeepEqual(got.Aggregates, clean.Aggregates) {
		t.Fatal("aggregates diverged")
	}
}

// TestChaosSweepSurvivesFaultsAndWorkerDeath is the acceptance chaos
// run: a worker takes a lease and dies silently (never heartbeats, never
// uploads — the in-process stand-in for kill -9), the surviving workers
// run under a fault plan that drops heartbeats and fails uploads, and
// the coordinator injects merge rejections and torn merges. The merged
// store must still end byte-identical (modulo timing) to an
// uninterrupted single-process sweep, with the duplicate executions
// absorbed and visible in the dedup counter.
func TestChaosSweepSurvivesFaultsAndWorkerDeath(t *testing.T) {
	opt := chaosSweep()
	clean, err := sweep.Run(context.Background(), opt)
	if err != nil {
		t.Fatal(err)
	}

	// Coordinator-side plan: reject or tear uploads at dist/merge.
	// Worker-side plan: lose lease RPCs, drop heartbeats, fail uploads.
	// Rates are low enough that the retry budgets absorb every schedule
	// with overwhelming margin, high enough that faults actually fire.
	coordPlan, err := faults.Parse("error=0.15,torn=0.2", 42)
	if err != nil {
		t.Fatal(err)
	}
	workerPlan, err := faults.Parse("error=0.2", 1234)
	if err != nil {
		t.Fatal(err)
	}

	st, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	const ttl = 300 * time.Millisecond
	c, err := NewCoordinator(CoordinatorConfig{
		Sweep: opt, Store: st, LeaseTTL: ttl, ChunkSize: 2, Faults: coordPlan,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(c)
	defer ts.Close()

	// The doomed worker: leases a range, then goes silent. Its jobs must
	// come back via TTL expiry and land on the survivors.
	var doomed LeaseResponse
	leaseBody := `{"worker":"doomed"}`
	resp, err := http.Post(ts.URL+PathLease, "application/json", strings.NewReader(leaseBody))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&doomed); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(doomed.Jobs) != 2 {
		t.Fatalf("doomed worker leased %d jobs, want 2", len(doomed.Jobs))
	}

	// Survivors join immediately — they contend with the doomed lease
	// and must wait out its expiry for the stranded jobs.
	var wg sync.WaitGroup
	workerStats := make([]*WorkerStats, 3)
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			stats, err := RunWorker(context.Background(), WorkerConfig{
				Coordinator: ts.URL,
				ID:          fmt.Sprintf("survivor%d", id),
				RPCRetries:  8,
				RPCBackoff:  5 * time.Millisecond,
				// The job retry budget must be nonzero: sweep/job fault
				// draws are a pure function of (seed, key, attempt), so
				// without in-worker retries a job that draws an error at
				// attempt 1 fails identically on every worker and the
				// quarantine machinery terminally fails it — the injected
				// "transient" error would not be transient at all.
				JobRetries:      4,
				JobRetryBackoff: 2 * time.Millisecond,
				Faults:          workerPlan,
			})
			workerStats[id] = stats
			if err != nil {
				t.Errorf("survivor %d: %v", id, err)
			}
		}(i)
	}
	wg.Wait()

	select {
	case <-c.Done():
	default:
		t.Fatalf("survivors exited but sweep incomplete: %+v", c.Status())
	}

	// The doomed worker now rises as a zombie: it computes its leased
	// jobs (long since reassigned and completed by others) and uploads.
	// Every record must dedup — at-least-once execution, exactly-once
	// storage.
	zw := &worker{cfg: WorkerConfig{RPCRetries: 8, RPCBackoff: 5 * time.Millisecond, ID: "doomed",
		Logf: func(string, ...any) {}}, client: ts.Client(), base: ts.URL, cc: sweep.NewCircuitCache(0)}
	var wireCfg SweepConfig
	if err := zw.get(context.Background(), PathConfig, &wireCfg); err != nil {
		t.Fatal(err)
	}
	zw.opt, err = wireCfg.Options()
	if err != nil {
		t.Fatal(err)
	}
	var records []UploadRecord
	for _, spec := range doomed.Jobs {
		rec, _, err := zw.runJob(context.Background(), spec)
		if err != nil {
			t.Fatal(err)
		}
		records = append(records, rec)
	}
	var upResp UploadResponse
	err = zw.post(context.Background(), PathUpload, siteUpload, doomed.LeaseID, func(attempt int) any {
		return UploadRequest{Worker: "doomed", LeaseID: doomed.LeaseID, Attempt: attempt, Results: records}
	}, &upResp)
	if err != nil {
		t.Fatal(err)
	}
	if upResp.Merged != 0 || upResp.Deduped != 2 {
		t.Fatalf("zombie upload = %+v, want 0 merged / 2 deduped", upResp)
	}

	// Equivalence: the merged journal reconstructs the clean run
	// byte-identically modulo timing.
	got, err := c.Summary()
	if err != nil {
		t.Fatal(err)
	}
	if got.Failed != 0 {
		t.Fatalf("chaos run recorded %d terminal failures: %+v", got.Failed, got.Failures)
	}
	if !reflect.DeepEqual(normalizeResults(got.Results), normalizeResults(clean.Results)) {
		t.Fatalf("chaos results diverged from single-process run:\n%+v\nvs\n%+v",
			got.Results, clean.Results)
	}

	// The failure machinery must actually have fired.
	stats := st.Stats()
	if stats.MergeSkipped < 2 {
		t.Fatalf("MergeSkipped = %d, want >= 2 (zombie dedup)", stats.MergeSkipped)
	}
	_, _, expired, _ := c.tracker.counters()
	if expired == 0 {
		t.Fatal("no lease ever expired — the doomed worker's range was never reclaimed")
	}
	metricsResp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(metricsResp.Body)
	metricsResp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	metrics := string(raw)
	for _, want := range []string{
		"dist_leases_expired_total",
		"dist_results_deduped_total",
		"dist_results_merged_total 8",
		"dist_jobs_done 8",
	} {
		if !strings.Contains(metrics, want) {
			t.Fatalf("metrics missing %q:\n%s", want, metrics)
		}
	}

	// Coordinator restart over the same journal: everything resumes,
	// nothing is re-leased.
	c2, err := NewCoordinator(CoordinatorConfig{Sweep: opt, Store: st})
	if err != nil {
		t.Fatal(err)
	}
	if st2 := c2.Status(); !st2.Complete || st2.Done != 8 {
		t.Fatalf("restarted coordinator status %+v, want complete 8/8", st2)
	}
	got2, err := c2.Summary()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(normalizeResults(got2.Results), normalizeResults(clean.Results)) {
		t.Fatal("restarted coordinator reconstructs different results")
	}
}

// TestWorkerLocalStoreRedelivers: a worker restarted over its local
// journal re-delivers stored results instead of recomputing.
func TestWorkerLocalStoreRedelivers(t *testing.T) {
	opt := chaosSweep()
	localDir := t.TempDir()

	// First worker run completes the whole sweep, journaling locally.
	_, ts1, _ := newTestCoordinator(t, opt, 5*time.Second, 4)
	local, err := store.Open(localDir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	stats1, err := RunWorker(context.Background(), WorkerConfig{
		Coordinator: ts1.URL, ID: "w", LocalStore: local, RPCBackoff: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats1.Computed != 8 || stats1.LocalHits != 0 {
		t.Fatalf("first run computed=%d localhits=%d, want 8/0", stats1.Computed, stats1.LocalHits)
	}
	local.Close()

	// A fresh coordinator (empty store), same sweep: the restarted
	// worker serves every job from its local journal.
	_, ts2, st2 := newTestCoordinator(t, opt, 5*time.Second, 4)
	local, err = store.Open(localDir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer local.Close()
	stats2, err := RunWorker(context.Background(), WorkerConfig{
		Coordinator: ts2.URL, ID: "w", LocalStore: local, RPCBackoff: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats2.Computed != 0 || stats2.LocalHits != 8 {
		t.Fatalf("second run computed=%d localhits=%d, want 0/8", stats2.Computed, stats2.LocalHits)
	}
	if st2.Stats().Records != 8 {
		t.Fatalf("coordinator store has %d records, want 8", st2.Stats().Records)
	}
}
