package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"os"
	"sync/atomic"
	"time"

	"repro/internal/faults"
	"repro/internal/store"
	"repro/internal/sweep"
)

// WorkerConfig configures one worker process (or goroutine).
type WorkerConfig struct {
	// Coordinator is the base URL, e.g. "http://host:7070". Required.
	Coordinator string
	// ID names this worker in leases and logs (default "host-pid").
	ID string
	// LocalStore optionally journals this worker's results locally
	// (keyed by the coordinator-shipped content key), so a restarted
	// worker re-delivers instead of recomputing.
	LocalStore *store.Store
	// JobRetries / JobRetryBackoff configure the sweep engine's per-job
	// retry budget (sweep.Options.Retries semantics).
	JobRetries      int
	JobRetryBackoff time.Duration
	// RPCRetries bounds re-sends of each coordinator RPC after a
	// transient failure (default 5); RPCBackoff is the base of the
	// exponential backoff between them (default 100ms).
	RPCRetries int
	RPCBackoff time.Duration
	// ReconnectTimeout bounds how long the worker keeps probing an
	// unreachable coordinator before concluding it is gone for good and
	// exiting cleanly (default DefaultReconnectTimeout; negative
	// disables reconnection entirely — the first exhausted retry budget
	// is a clean exit, the pre-reconnect behavior). The budget covers
	// *continuous* downtime: any successful probe resets it.
	ReconnectTimeout time.Duration
	// Faults injects at the worker-side sites: dist/lease (lost lease
	// RPCs), dist/heartbeat (dropped renewals — the lease expires and
	// the range is reassigned), dist/upload (failed deliveries,
	// retried with a fresh attempt number), dist/reconnect (failed
	// reconnect probes, stretching a simulated coordinator outage).
	Faults *faults.Plan
	// Client overrides the HTTP client (default: http.DefaultClient
	// semantics with a 30s timeout).
	Client *http.Client
	// Logf receives progress lines (default: discard).
	Logf func(format string, args ...any)
}

// WorkerStats summarizes one RunWorker call.
type WorkerStats struct {
	Leases      int // leases processed to completion
	LeasesLost  int // leases abandoned after the coordinator reclaimed them
	Computed    int // jobs computed locally
	LocalHits   int // jobs served from the local journal
	Failed      int // jobs that ended in a terminal failure record
	Uploaded    int // result records delivered
	Retried     int // extra sweep-engine attempts spent on transient job failures
	Reconnects  int // coordinator outages survived (config revalidated on reattach)
	Spilled     int // records held locally when the coordinator went away mid-upload
	Redelivered int // spilled records delivered after a reconnect
}

// spilledUpload is a lease's worth of results that was computed but
// never acknowledged before the coordinator became unreachable. It is
// re-delivered verbatim after a reconnect; the coordinator's merge
// dedups anything a replacement worker got there first.
type spilledUpload struct {
	leaseID string
	records []UploadRecord
}

// worker is the runtime state behind RunWorker.
type worker struct {
	cfg         WorkerConfig
	client      *http.Client
	base        string
	opt         sweep.Options
	cc          *sweep.CircuitCache
	stats       WorkerStats
	confHash    string // hash of the sweep definition this worker joined
	spill       []spilledUpload
	reconnected bool // next lease request reports a survived outage
}

// RunWorker joins the coordinator's sweep and processes leases until
// the sweep completes or ctx is canceled. A coordinator that becomes
// unreachable mid-run is not fatal: the worker spills any
// computed-but-unacknowledged results, probes the config endpoint with
// capped exponential backoff for up to ReconnectTimeout, revalidates
// that the coordinator still serves the same sweep definition, and
// resumes — re-delivering the spill first. Only a coordinator that
// stays down past the budget (it finished the sweep and exited, or is
// gone for good) is a clean exit; one that comes back serving a
// *different* sweep is a terminal error. It always returns the stats
// accumulated so far.
func RunWorker(ctx context.Context, cfg WorkerConfig) (*WorkerStats, error) {
	if cfg.Coordinator == "" {
		return &WorkerStats{}, errors.New("dist: worker requires a coordinator URL")
	}
	if cfg.ID == "" {
		host, _ := os.Hostname()
		cfg.ID = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	if cfg.RPCRetries <= 0 {
		cfg.RPCRetries = 5
	}
	if cfg.RPCBackoff <= 0 {
		cfg.RPCBackoff = 100 * time.Millisecond
	}
	if cfg.ReconnectTimeout == 0 {
		cfg.ReconnectTimeout = DefaultReconnectTimeout
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Timeout: 30 * time.Second}
	}
	w := &worker{
		cfg:    cfg,
		client: client,
		base:   cfg.Coordinator,
		cc:     sweep.NewCircuitCache(0),
	}

	// The coordinator's config is the single source of truth for what a
	// job means; the worker only adds local policy (retries, faults).
	var wireCfg SweepConfig
	if err := w.get(ctx, PathConfig, &wireCfg); err != nil {
		return &w.stats, fmt.Errorf("dist: fetching config: %w", err)
	}
	opt, err := wireCfg.Options()
	if err != nil {
		return &w.stats, err
	}
	opt.Retries = cfg.JobRetries
	opt.RetryBackoff = cfg.JobRetryBackoff
	opt.Faults = cfg.Faults
	w.opt = opt
	raw, err := json.Marshal(wireCfg)
	if err != nil {
		return &w.stats, fmt.Errorf("dist: hashing config: %w", err)
	}
	w.confHash = configHash(raw)

	// survive turns an exhausted RPC retry budget into either a
	// successful reconnect (true), a give-up clean exit (false, nil), or
	// a terminal error (ctx canceled, or the coordinator came back
	// serving a different sweep).
	survive := func(cause error) (bool, error) {
		ok, err := w.reconnect(ctx, cause)
		if err != nil {
			return false, err
		}
		if !ok {
			cfg.Logf("worker %s: coordinator gone (%v); exiting with %d spilled records undelivered",
				cfg.ID, cause, spillCount(w.spill))
		}
		return ok, nil
	}

	leaseSeq := 0
	for {
		if err := ctx.Err(); err != nil {
			return &w.stats, err
		}
		// Spilled results from before an outage go out before any new
		// lease: the coordinator may be waiting on exactly those jobs.
		if err := w.redeliver(ctx); err != nil {
			var down *downError
			if !errors.As(err, &down) {
				return &w.stats, fmt.Errorf("dist: redelivering spilled results: %w", err)
			}
			if ok, rerr := survive(down); rerr != nil || !ok {
				return &w.stats, rerr
			}
			continue
		}
		leaseSeq++
		var resp LeaseResponse
		key := fmt.Sprintf("%s-%d", cfg.ID, leaseSeq)
		reconnected := w.reconnected
		err := w.post(ctx, PathLease, siteLease, key, func(int) any {
			return LeaseRequest{Worker: cfg.ID, Reconnected: reconnected}
		}, &resp)
		var down *downError
		if errors.As(err, &down) {
			if ok, rerr := survive(down); rerr != nil || !ok {
				return &w.stats, rerr
			}
			continue
		}
		if err != nil {
			return &w.stats, fmt.Errorf("dist: leasing: %w", err)
		}
		w.reconnected = false
		switch {
		case resp.Done:
			cfg.Logf("worker %s: sweep complete (%d leases, %d computed, %d uploaded)",
				cfg.ID, w.stats.Leases, w.stats.Computed, w.stats.Uploaded)
			return &w.stats, nil
		case len(resp.Jobs) == 0:
			wait := time.Duration(resp.RetryMs) * time.Millisecond
			if wait <= 0 {
				wait = DefaultRetryMs * time.Millisecond
			}
			if err := sleepCtx(ctx, wait); err != nil {
				return &w.stats, err
			}
			continue
		}
		if err := w.processLease(ctx, resp); err != nil {
			if errors.As(err, &down) {
				if ok, rerr := survive(down); rerr != nil || !ok {
					return &w.stats, rerr
				}
				continue
			}
			return &w.stats, err
		}
	}
}

func spillCount(spill []spilledUpload) int {
	n := 0
	for _, s := range spill {
		n += len(s.records)
	}
	return n
}

// processLease computes a lease's jobs under a background heartbeat and
// uploads the results. Losing the lease mid-flight (heartbeat says
// gone) stops further compute; whatever finished is still uploaded —
// the coordinator accepts results from expired leases and dedups any
// the replacement worker delivered first.
func (w *worker) processLease(ctx context.Context, l LeaseResponse) error {
	ttl := time.Duration(l.TTLMs) * time.Millisecond
	w.cfg.Logf("worker %s: lease %s: %d jobs, ttl %s", w.cfg.ID, l.LeaseID, len(l.Jobs), ttl)

	var lost atomic.Bool
	hbCtx, stopHB := context.WithCancel(ctx)
	hbDone := make(chan struct{})
	go func() {
		defer close(hbDone)
		w.heartbeat(hbCtx, l.LeaseID, ttl, &lost)
	}()

	var records []UploadRecord
	for _, spec := range l.Jobs {
		if lost.Load() || ctx.Err() != nil {
			break
		}
		rec, computed, err := w.runJob(ctx, spec)
		if err != nil {
			stopHB()
			<-hbDone
			return err
		}
		if computed {
			w.stats.Computed++
		} else {
			w.stats.LocalHits++
		}
		if rec.Failed {
			w.stats.Failed++
		}
		records = append(records, rec)
	}
	stopHB()
	<-hbDone

	if len(records) > 0 {
		var resp UploadResponse
		err := w.post(ctx, PathUpload, siteUpload, l.LeaseID, func(attempt int) any {
			return UploadRequest{Worker: w.cfg.ID, LeaseID: l.LeaseID, Attempt: attempt, Results: records}
		}, &resp)
		var down *downError
		if errors.As(err, &down) {
			// The coordinator went away with finished work in hand.
			// Spill it: the records survive in memory (and succeeded
			// results in the local journal) and are re-delivered after a
			// reconnect, where the merge dedups anything a replacement
			// worker computed in the meantime.
			w.spill = append(w.spill, spilledUpload{leaseID: l.LeaseID, records: records})
			w.stats.Spilled += len(records)
			w.cfg.Logf("worker %s: lease %s: coordinator gone mid-upload; spilled %d records",
				w.cfg.ID, l.LeaseID, len(records))
			return err
		}
		if err != nil {
			return fmt.Errorf("dist: uploading lease %s: %w", l.LeaseID, err)
		}
		w.stats.Uploaded += len(records)
		w.cfg.Logf("worker %s: lease %s uploaded: %d merged, %d deduped",
			w.cfg.ID, l.LeaseID, resp.Merged, resp.Deduped)
	}
	if lost.Load() {
		w.stats.LeasesLost++
	} else {
		w.stats.Leases++
	}
	return nil
}

// runJob produces one job's upload record, from the local journal when
// possible. Terminal failures become Failed records (the coordinator
// accounts them without journaling), mirroring the single-process
// sweep.
func (w *worker) runJob(ctx context.Context, spec JobSpec) (UploadRecord, bool, error) {
	if ls := w.cfg.LocalStore; ls != nil {
		if raw, ok := ls.Get(spec.Key); ok {
			return UploadRecord{Key: spec.Key, Result: raw}, false, nil
		}
	}
	job, err := spec.Job()
	if err != nil {
		return UploadRecord{}, false, fmt.Errorf("dist: lease carried bad job spec: %w", err)
	}
	res, attempts := sweep.ExecuteJob(ctx, job, spec.Key, w.cc, w.opt)
	if attempts > 1 {
		w.stats.Retried += attempts - 1
	}
	raw, err := json.Marshal(res)
	if err != nil {
		return UploadRecord{}, false, fmt.Errorf("dist: encoding result: %w", err)
	}
	if res.Err == "" {
		if ls := w.cfg.LocalStore; ls != nil {
			ls.Put(spec.Key, raw) // best-effort; a failed local append never fails the job
		}
	}
	return UploadRecord{Key: spec.Key, Failed: res.Err != "", Result: raw}, true, nil
}

// reconnect probes the coordinator's config endpoint until it answers
// again or the worker has been continuously unreachable for
// ReconnectTimeout. Probes are single round-trips under capped
// exponential backoff (never more than maxReconnectBackoff apart); the
// dist/reconnect fault site can fail probes to stretch a simulated
// outage. On reattach the config is revalidated by hash — a
// coordinator that came back serving a different sweep definition is a
// terminal error, because mixing results across definitions would
// corrupt the store. Returns (false, nil) when the budget runs out:
// the coordinator is gone for good, which callers treat as a clean
// exit.
func (w *worker) reconnect(ctx context.Context, cause error) (bool, error) {
	if w.cfg.ReconnectTimeout < 0 {
		return false, nil
	}
	deadline := time.Now().Add(w.cfg.ReconnectTimeout)
	w.cfg.Logf("worker %s: coordinator unreachable (%v); reconnecting for up to %s",
		w.cfg.ID, cause, w.cfg.ReconnectTimeout)
	for probe := 1; ; probe++ {
		if err := ctx.Err(); err != nil {
			return false, err
		}
		if time.Now().After(deadline) {
			return false, nil
		}
		if err := w.cfg.Faults.Inject(siteReconnect, w.cfg.ID, probe); err != nil {
			w.cfg.Logf("worker %s: reconnect probe %d: injected %v", w.cfg.ID, probe, err)
		} else {
			var wireCfg SweepConfig
			req, err := http.NewRequestWithContext(ctx, http.MethodGet, w.base+PathConfig, nil)
			if err != nil {
				return false, err
			}
			if err := w.roundTrip(req, &wireCfg); err == nil {
				raw, err := json.Marshal(wireCfg)
				if err != nil {
					return false, fmt.Errorf("dist: hashing config: %w", err)
				}
				if configHash(raw) != w.confHash {
					return false, fmt.Errorf("dist: coordinator at %s now serves a different sweep (config hash changed); refusing to mix results", w.base)
				}
				w.stats.Reconnects++
				w.reconnected = true
				w.cfg.Logf("worker %s: reconnected after %d probes; config revalidated", w.cfg.ID, probe)
				return true, nil
			} else if ctx.Err() != nil {
				return false, ctx.Err()
			}
		}
		d := backoff(w.cfg.RPCBackoff, siteReconnect+"|"+w.cfg.ID, probe)
		if d > maxReconnectBackoff {
			d = maxReconnectBackoff
		}
		if err := sleepCtx(ctx, d); err != nil {
			return false, err
		}
	}
}

// redeliver drains the spill, oldest lease first. Each upload uses the
// normal retry budget; an exhausted budget (coordinator down again)
// surfaces as a downError with the spill intact, so the caller can
// reconnect and try again.
func (w *worker) redeliver(ctx context.Context) error {
	for len(w.spill) > 0 {
		s := w.spill[0]
		var resp UploadResponse
		err := w.post(ctx, PathUpload, siteUpload, s.leaseID, func(attempt int) any {
			return UploadRequest{Worker: w.cfg.ID, LeaseID: s.leaseID, Attempt: attempt, Results: s.records}
		}, &resp)
		if err != nil {
			return err
		}
		w.stats.Uploaded += len(s.records)
		w.stats.Redelivered += len(s.records)
		w.spill = w.spill[1:]
		w.cfg.Logf("worker %s: redelivered %d spilled records for lease %s (%d merged, %d deduped)",
			w.cfg.ID, len(s.records), s.leaseID, resp.Merged, resp.Deduped)
	}
	return nil
}

// heartbeat renews the lease at TTL/3 until canceled, flagging lost
// when the coordinator says the lease is gone. Renewals are single
// attempts — a missed beat is recovered by the next tick well inside
// the TTL — and the dist/heartbeat fault site drops beats entirely,
// which is how the chaos tests starve a lease into reassignment.
func (w *worker) heartbeat(ctx context.Context, leaseID string, ttl time.Duration, lost *atomic.Bool) {
	interval := ttl / 3
	if interval <= 0 {
		interval = time.Second
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for beat := 1; ; beat++ {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
		if w.cfg.Faults.Decide(siteHeartbeat, leaseID, beat) != faults.None {
			w.cfg.Logf("worker %s: lease %s: heartbeat %d dropped (injected)", w.cfg.ID, leaseID, beat)
			continue
		}
		var resp HeartbeatResponse
		err := w.doOnce(ctx, PathHeartbeat, HeartbeatRequest{Worker: w.cfg.ID, LeaseID: leaseID}, &resp)
		var he *remoteError
		if errors.As(err, &he) && he.Code == codeLeaseGone {
			w.cfg.Logf("worker %s: lease %s reclaimed by coordinator", w.cfg.ID, leaseID)
			lost.Store(true)
			return
		}
	}
}

// ---------------------------------------------------------------------
// RPC plumbing: every POST retries transient failures (transport
// errors, 5xx/429, injected faults) with exponential backoff and
// seeded jitter; 4xx is terminal.

// downError marks RPC retry-budget exhaustion on transient failures —
// the coordinator is unreachable or persistently erroring, as opposed
// to rejecting the request outright.
type downError struct {
	attempts int
	cause    error
}

func (e *downError) Error() string {
	return fmt.Sprintf("coordinator unreachable after %d attempts: %v", e.attempts, e.cause)
}
func (e *downError) Unwrap() error { return e.cause }

// remoteError is a structured error envelope from the coordinator.
type remoteError struct {
	Status  int
	Code    string
	Message string
}

func (e *remoteError) Error() string {
	return fmt.Sprintf("coordinator: %d %s: %s", e.Status, e.Code, e.Message)
}

// Retryable implements the faults.Retryable contract: server-side
// trouble is worth retrying, client mistakes are not.
func (e *remoteError) Retryable() bool {
	return e.Status >= 500 || e.Status == http.StatusTooManyRequests
}

func retryable(err error) bool {
	var re *remoteError
	if errors.As(err, &re) {
		return re.Retryable()
	}
	// Transport-level failures (connection refused, reset, timeout) and
	// injected faults are transient by definition.
	return true
}

// post sends build(attempt) to path, retrying transient failures. The
// fault plan is consulted per attempt at the given site, so an injected
// schedule deterministically exercises the retry path.
func (w *worker) post(ctx context.Context, path, site, key string, build func(attempt int) any, out any) error {
	var lastErr error
	for attempt := 1; attempt <= w.cfg.RPCRetries+1; attempt++ {
		if attempt > 1 {
			if err := sleepCtx(ctx, backoff(w.cfg.RPCBackoff, site+"|"+key, attempt-1)); err != nil {
				return err
			}
		}
		if err := w.cfg.Faults.Inject(site, key, attempt); err != nil {
			lastErr = err
			continue
		}
		err := w.doOnce(ctx, path, build(attempt), out)
		if err == nil {
			return nil
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
		if !retryable(err) {
			return err
		}
		lastErr = err
	}
	return &downError{attempts: w.cfg.RPCRetries + 1, cause: lastErr}
}

// doOnce performs one POST round-trip.
func (w *worker) doOnce(ctx context.Context, path string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.base+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	return w.roundTrip(req, out)
}

// get performs a GET with the same retry policy as post.
func (w *worker) get(ctx context.Context, path string, out any) error {
	var lastErr error
	for attempt := 1; attempt <= w.cfg.RPCRetries+1; attempt++ {
		if attempt > 1 {
			if err := sleepCtx(ctx, backoff(w.cfg.RPCBackoff, "get|"+path, attempt-1)); err != nil {
				return err
			}
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, w.base+path, nil)
		if err != nil {
			return err
		}
		err = w.roundTrip(req, out)
		if err == nil {
			return nil
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
		if !retryable(err) {
			return err
		}
		lastErr = err
	}
	return &downError{attempts: w.cfg.RPCRetries + 1, cause: lastErr}
}

// roundTrip executes the request and decodes either the response body
// or the structured error envelope.
func (w *worker) roundTrip(req *http.Request, out any) error {
	resp, err := w.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		var env struct {
			Error struct {
				Code    string `json:"code"`
				Message string `json:"message"`
			} `json:"error"`
		}
		re := &remoteError{Status: resp.StatusCode, Code: "unknown", Message: string(raw)}
		if json.Unmarshal(raw, &env) == nil && env.Error.Code != "" {
			re.Code, re.Message = env.Error.Code, env.Error.Message
		}
		return re
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(raw, out)
}

// backoff is exponential with ±50% jitter seeded by the site/key, the
// same deterministic-schedule idiom as the sweep engine's job retries.
func backoff(base time.Duration, key string, retry int) time.Duration {
	if retry > 6 {
		retry = 6
	}
	d := base << retry
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%d", key, retry)
	jitter := float64(h.Sum64()%1000)/1000.0 - 0.5 // [-0.5, 0.5)
	return d + time.Duration(jitter*float64(d))
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
