package dist

import (
	"bytes"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/expt"
	"repro/internal/reorder"
	"repro/internal/store"
	"repro/internal/sweep"
)

// fakeClock drives the tracker's lazy expiry without real sleeps.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func testJobs(n int) ([]sweep.Job, []string) {
	jobs := make([]sweep.Job, n)
	keys := make([]string, n)
	for i := range jobs {
		jobs[i] = sweep.Job{Index: i, Benchmark: "c17", Scenario: expt.ScenarioA, Mode: reorder.Full, Seed: int64(i)}
		keys[i] = string(rune('a' + i))
	}
	return jobs, keys
}

// TestTrackerLeaseLifecycle walks grant → renew → expire → reassign →
// deliver on a fake clock.
func TestTrackerLeaseLifecycle(t *testing.T) {
	clock := &fakeClock{t: time.Unix(1000, 0)}
	jobs, keys := testJobs(5)
	tr := newTracker(jobs, keys, 10*time.Second, 2, clock.now)

	l1, done := tr.grant("w1")
	if done || l1 == nil || len(l1.jobs) != 2 {
		t.Fatalf("first grant = %+v done=%v, want 2 jobs", l1, done)
	}
	l2, _ := tr.grant("w2")
	l3, _ := tr.grant("w3")
	if len(l2.jobs) != 2 || len(l3.jobs) != 1 {
		t.Fatalf("grants carved %d+%d jobs, want 2+1", len(l2.jobs), len(l3.jobs))
	}
	if l4, done := tr.grant("w4"); l4 != nil || done {
		t.Fatalf("grant with nothing pending = (%v, %v), want (nil, false)", l4, done)
	}

	// Renewal holds a lease across its original deadline.
	clock.advance(8 * time.Second)
	if !tr.renew(l1.id) {
		t.Fatal("renew of live lease refused")
	}
	clock.advance(4 * time.Second) // l2, l3 now past deadline; l1 renewed
	st := tr.status()
	if st.Pending != 3 || st.Leased != 2 || st.Workers != 1 {
		t.Fatalf("after expiry: %+v, want pending 3 leased 2 workers 1", st)
	}
	if tr.renew(l2.id) {
		t.Fatal("renew of expired lease succeeded")
	}
	g, r, e, _ := tr.counters()
	if g != 3 || r != 1 || e != 2 {
		t.Fatalf("counters granted=%d renewed=%d expired=%d, want 3/1/2", g, r, e)
	}

	// The expired jobs are grantable again.
	l4, _ := tr.grant("w4")
	if len(l4.jobs) != 2 {
		t.Fatalf("reassignment granted %d jobs, want 2", len(l4.jobs))
	}

	// First delivery wins; the duplicate is not a state change.
	idx := l1.jobs[0]
	if !tr.markDone(idx, nil) {
		t.Fatal("first delivery not recorded")
	}
	if tr.markDone(idx, nil) {
		t.Fatal("duplicate delivery recorded as first")
	}

	// Deliver everything; the done channel must close.
	for i := range jobs {
		tr.markDone(i, nil)
	}
	select {
	case <-tr.doneCh:
	default:
		t.Fatal("done channel open after all jobs delivered")
	}
	if st := tr.status(); !st.Complete || st.Done != 5 {
		t.Fatalf("final status %+v", st)
	}
}

// TestTrackerReleaseReturnsUndelivered: a successful upload retires the
// lease, and jobs the worker skipped go straight back to pending.
func TestTrackerReleaseReturnsUndelivered(t *testing.T) {
	clock := &fakeClock{t: time.Unix(0, 0)}
	jobs, keys := testJobs(3)
	tr := newTracker(jobs, keys, time.Minute, 3, clock.now)
	l, _ := tr.grant("w")
	tr.markDone(l.jobs[0], nil)
	tr.release(l.id)
	st := tr.status()
	if st.Pending != 2 || st.Leased != 0 || st.Done != 1 {
		t.Fatalf("after partial release: %+v", st)
	}
}

// TestTrackerDurationWindow pins the straggler-p95 sample ring at its
// capacity boundary: the history must stop growing at durationWindow
// entries, eviction must drop the oldest sample first, and the p95 must
// be computed over exactly the surviving window — a fleet that slowed
// down mid-sweep shows up in the p95 instead of being averaged away by
// unbounded early history.
func TestTrackerDurationWindow(t *testing.T) {
	tr := newTracker(nil, nil, time.Minute, 1, time.Now)

	// Below capacity: every sample is retained and sorted into the p95.
	for i := 1; i <= durationWindow-1; i++ {
		tr.recordDurationLocked(time.Duration(i) * time.Millisecond)
	}
	if len(tr.durations) != durationWindow-1 || tr.durTotal != durationWindow-1 {
		t.Fatalf("below cap: len=%d total=%d, want %d/%d",
			len(tr.durations), tr.durTotal, durationWindow-1, durationWindow-1)
	}

	// Exactly at capacity: samples 1..durationWindow ms, p95 index is
	// ceil(n*95/100)-1 = 243 for n=256, so the sorted value is 244ms.
	tr.recordDurationLocked(time.Duration(durationWindow) * time.Millisecond)
	if len(tr.durations) != durationWindow {
		t.Fatalf("at cap: len=%d, want %d", len(tr.durations), durationWindow)
	}
	wantIdx := (durationWindow*95+99)/100 - 1
	want := time.Duration(wantIdx+1) * time.Millisecond
	if got := tr.p95Locked(); got != want {
		t.Fatalf("p95 at cap = %v, want %v", got, want)
	}

	// One past capacity: the ring stays at durationWindow entries and the
	// oldest sample (1ms) is the one evicted.
	tr.recordDurationLocked(time.Second)
	if len(tr.durations) != durationWindow || tr.durTotal != durationWindow+1 {
		t.Fatalf("past cap: len=%d total=%d, want %d/%d",
			len(tr.durations), tr.durTotal, durationWindow, durationWindow+1)
	}
	min := tr.durations[0]
	for _, d := range tr.durations {
		if d < min {
			min = d
		}
	}
	if min != 2*time.Millisecond {
		t.Fatalf("oldest surviving sample = %v, want 2ms (1ms evicted first)", min)
	}

	// A full window of slow leases replaces the history entirely: the p95
	// reflects only the new regime. The p95 sort must also leave the ring
	// itself in insertion order, or the next eviction would overwrite an
	// arbitrary sample instead of the oldest.
	for i := 0; i < durationWindow; i++ {
		tr.recordDurationLocked(time.Second)
	}
	if got := tr.p95Locked(); got != time.Second {
		t.Fatalf("p95 after regime change = %v, want 1s", got)
	}
	if tr.durTotal != 2*durationWindow+1 {
		t.Fatalf("durTotal = %d, want %d", tr.durTotal, 2*durationWindow+1)
	}
}

// TestConfigRoundTrip: options survive the wire encoding, and leased
// job specs reconstruct the exact sweep jobs.
func TestConfigRoundTrip(t *testing.T) {
	opt := sweep.DefaultOptions()
	opt.Benchmarks = []string{"c17", "rca4"}
	opt.Seeds = []int64{3, 9}
	opt.Simulate = true
	opt.OptimizerWorkers = 2
	opt.Expt.CyclesB = 77

	raw, err := json.Marshal(ConfigFromOptions(opt))
	if err != nil {
		t.Fatal(err)
	}
	var cfg SweepConfig
	if err := json.Unmarshal(raw, &cfg); err != nil {
		t.Fatal(err)
	}
	got, err := cfg.Options()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Benchmarks, opt.Benchmarks) ||
		!reflect.DeepEqual(got.Scenarios, opt.Scenarios) ||
		!reflect.DeepEqual(got.Modes, opt.Modes) ||
		!reflect.DeepEqual(got.Seeds, opt.Seeds) ||
		got.Simulate != opt.Simulate ||
		got.OptimizerWorkers != opt.OptimizerWorkers ||
		got.Expt.CyclesB != 77 {
		t.Fatalf("round-trip diverged:\n%+v\nvs\n%+v", got, opt)
	}
	// The reconstruction must produce identical store keys — the whole
	// scheme depends on coordinator and worker agreeing on identity.
	for i, j := range sweep.Jobs(opt) {
		if j.StoreKey(opt) != sweep.Jobs(got)[i].StoreKey(got) {
			t.Fatalf("job %d store key diverged across the wire", i)
		}
	}

	for _, j := range sweep.Jobs(opt) {
		spec := JobSpec{Index: j.Index, Benchmark: j.Benchmark, Scenario: j.Scenario.String(),
			Mode: j.Mode.String(), Seed: j.Seed, Key: "k"}
		back, err := spec.Job()
		if err != nil {
			t.Fatal(err)
		}
		if back != j {
			t.Fatalf("JobSpec round-trip: %+v vs %+v", back, j)
		}
	}

	if _, err := (SweepConfig{Scenarios: []string{"Z"}}).Options(); err == nil {
		t.Fatal("bad scenario accepted")
	}
	if _, err := (SweepConfig{Modes: []string{"bogus"}}).Options(); err == nil {
		t.Fatal("bad mode accepted")
	}
}

func newTestCoordinator(t *testing.T, opt sweep.Options, ttl time.Duration, chunk int) (*Coordinator, *httptest.Server, *store.Store) {
	t.Helper()
	st, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	c, err := NewCoordinator(CoordinatorConfig{Sweep: opt, Store: st, LeaseTTL: ttl, ChunkSize: chunk})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(c)
	t.Cleanup(ts.Close)
	return c, ts, st
}

func postRaw(t *testing.T, url string, body string) (*http.Response, string) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp, buf.String()
}

// TestCoordinatorEndpointContracts pins the HTTP conventions: strict
// decode, structured envelopes, method guards, lease_gone.
func TestCoordinatorEndpointContracts(t *testing.T) {
	opt := sweep.Options{Benchmarks: []string{"c17"}, Scenarios: []expt.Scenario{expt.ScenarioA}, Seeds: []int64{1}}
	_, ts, _ := newTestCoordinator(t, opt, time.Minute, 2)

	resp, body := postRaw(t, ts.URL+PathLease, `{"worker":"w","bogus":1}`)
	if resp.StatusCode != 400 || !strings.Contains(body, `"invalid_json"`) {
		t.Fatalf("unknown field: %d %s", resp.StatusCode, body)
	}
	resp, body = postRaw(t, ts.URL+PathLease, `{}`)
	if resp.StatusCode != 400 || !strings.Contains(body, `"invalid_request"`) {
		t.Fatalf("missing worker: %d %s", resp.StatusCode, body)
	}
	resp, body = postRaw(t, ts.URL+PathHeartbeat, `{"worker":"w","lease_id":"lease-99"}`)
	if resp.StatusCode != 410 || !strings.Contains(body, codeLeaseGone) {
		t.Fatalf("unknown lease heartbeat: %d %s", resp.StatusCode, body)
	}
	getResp, err := http.Get(ts.URL + PathLease)
	if err != nil {
		t.Fatal(err)
	}
	getResp.Body.Close()
	if getResp.StatusCode != 405 {
		t.Fatalf("GET on lease = %d, want 405", getResp.StatusCode)
	}

	cfgResp, err := http.Get(ts.URL + PathConfig)
	if err != nil {
		t.Fatal(err)
	}
	var cfg SweepConfig
	if err := json.NewDecoder(cfgResp.Body).Decode(&cfg); err != nil {
		t.Fatal(err)
	}
	cfgResp.Body.Close()
	if !reflect.DeepEqual(cfg.Benchmarks, []string{"c17"}) || len(cfg.Modes) != 1 {
		t.Fatalf("config = %+v", cfg)
	}

	// Uploading a result for an unknown key is ignored, not an error:
	// late deliveries from long-dead leases must be harmless.
	resp, body = postRaw(t, ts.URL+PathUpload,
		`{"worker":"w","lease_id":"lease-99","attempt":1,"results":[{"key":"nope","result":"e30="}]}`)
	if resp.StatusCode != 200 || !strings.Contains(body, `"unknown":1`) {
		t.Fatalf("unknown key upload: %d %s", resp.StatusCode, body)
	}
}

// TestCoordinatorRejectsUnknownBenchmark: job validation happens at
// construction, not at lease time.
func TestCoordinatorRejectsUnknownBenchmark(t *testing.T) {
	st, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	_, err = NewCoordinator(CoordinatorConfig{
		Sweep: sweep.Options{Benchmarks: []string{"no-such-bench"}},
		Store: st,
	})
	if err == nil || !strings.Contains(err.Error(), "no-such-bench") {
		t.Fatalf("err = %v", err)
	}
}

// TestWorkerRPCRetry: transient 503s are retried through, terminal 400s
// are not.
func TestWorkerRPCRetry(t *testing.T) {
	fails := 2
	calls := 0
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls++
		if calls <= fails {
			writeError(w, errf(503, "unavailable", "try again"))
			return
		}
		writeJSON(w, map[string]int{"ok": 1})
	}))
	defer ts.Close()

	w := &worker{cfg: WorkerConfig{RPCRetries: 4, RPCBackoff: time.Millisecond, Logf: func(string, ...any) {}},
		client: ts.Client(), base: ts.URL}
	var out map[string]int
	err := w.post(t.Context(), "/x", siteLease, "k", func(int) any { return map[string]int{} }, &out)
	if err != nil || out["ok"] != 1 || calls != 3 {
		t.Fatalf("retry: err=%v calls=%d out=%v", err, calls, out)
	}

	calls, fails = 0, 0
	ts2 := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls++
		writeError(w, errf(400, "invalid_request", "no"))
	}))
	defer ts2.Close()
	w2 := &worker{cfg: WorkerConfig{RPCRetries: 4, RPCBackoff: time.Millisecond, Logf: func(string, ...any) {}},
		client: ts2.Client(), base: ts2.URL}
	err = w2.post(t.Context(), "/x", siteLease, "k", func(int) any { return map[string]int{} }, &out)
	var re *remoteError
	if err == nil || !errors.As(err, &re) || re.Status != 400 || calls != 1 {
		t.Fatalf("terminal 400: err=%v calls=%d", err, calls)
	}
}
