package dist

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/delay"
	"repro/internal/expt"
	"repro/internal/library"
	"repro/internal/sim"
	"repro/internal/sweep"
)

// Protocol endpoints. All bodies are JSON; errors use the same
// {"error":{"code","message"}} envelope as internal/serve.
const (
	PathConfig    = "/dist/v1/config"    // GET: the sweep definition workers must compute under
	PathLease     = "/dist/v1/lease"     // POST: claim a bounded job range under a TTL lease
	PathHeartbeat = "/dist/v1/heartbeat" // POST: renew a lease
	PathUpload    = "/dist/v1/upload"    // POST: deliver a lease's results for idempotent merge
	PathStatus    = "/dist/v1/status"    // GET: sweep progress
)

// SweepConfig is the wire form of the sweep definition: everything a
// worker needs to compute jobs byte-identically to the coordinator's
// own enumeration. The coordinator is the single source of truth —
// workers carry no job-defining flags, so a fleet can never disagree
// about what a job means. Job content keys (sweep.Job.StoreKey) are
// computed only on the coordinator and shipped inside each lease.
type SweepConfig struct {
	Benchmarks       []string   `json:"benchmarks"`
	Scenarios        []string   `json:"scenarios"`
	Modes            []string   `json:"modes"`
	Seeds            []int64    `json:"seeds"`
	Simulate         bool       `json:"simulate"`
	OptimizerWorkers int        `json:"optimizer_workers,omitempty"`
	Expt             ExptConfig `json:"expt"`
}

// ExptConfig mirrors expt.Options minus the fields that cannot or must
// not travel: the library pointer (distributed sweeps run on the
// default library on every node) and the row-level worker count (local
// policy).
type ExptConfig struct {
	Params     core.Params  `json:"params"`
	Delay      delay.Params `json:"delay"`
	Sim        sim.Params   `json:"sim"`
	HorizonA   float64      `json:"horizon_a"`
	CyclesB    int          `json:"cycles_b"`
	PeriodB    float64      `json:"period_b"`
	MaxDensA   float64      `json:"max_dens_a"`
	Seed       int64        `json:"seed"`
	SimVectors int          `json:"sim_vectors"`
	SimLanes   int          `json:"sim_lanes,omitempty"`
}

// ConfigFromOptions renders normalized sweep options into wire form.
// The options must already have explicit benchmark/scenario/mode/seed
// lists (NewCoordinator normalizes before calling this).
func ConfigFromOptions(o sweep.Options) SweepConfig {
	c := SweepConfig{
		Benchmarks:       o.Benchmarks,
		Seeds:            o.Seeds,
		Simulate:         o.Simulate,
		OptimizerWorkers: o.OptimizerWorkers,
		Expt: ExptConfig{
			Params:     o.Expt.Params,
			Delay:      o.Expt.Delay,
			Sim:        o.Expt.Sim,
			HorizonA:   o.Expt.HorizonA,
			CyclesB:    o.Expt.CyclesB,
			PeriodB:    o.Expt.PeriodB,
			MaxDensA:   o.Expt.MaxDensA,
			Seed:       o.Expt.Seed,
			SimVectors: o.Expt.SimVectors,
			SimLanes:   o.Expt.SimLanes,
		},
	}
	for _, sc := range o.Scenarios {
		c.Scenarios = append(c.Scenarios, sc.String())
	}
	for _, m := range o.Modes {
		c.Modes = append(c.Modes, m.String())
	}
	return c
}

// Options reconstructs sweep options from the wire form. The returned
// options are compute-complete (library defaulted) but carry no
// stream/store/fault wiring — the worker attaches its own.
func (c SweepConfig) Options() (sweep.Options, error) {
	o := sweep.Options{
		Benchmarks:       c.Benchmarks,
		Seeds:            c.Seeds,
		Simulate:         c.Simulate,
		OptimizerWorkers: c.OptimizerWorkers,
		Expt: expt.Options{
			Params:     c.Expt.Params,
			Delay:      c.Expt.Delay,
			Sim:        c.Expt.Sim,
			HorizonA:   c.Expt.HorizonA,
			CyclesB:    c.Expt.CyclesB,
			PeriodB:    c.Expt.PeriodB,
			MaxDensA:   c.Expt.MaxDensA,
			Seed:       c.Expt.Seed,
			SimVectors: c.Expt.SimVectors,
			SimLanes:   c.Expt.SimLanes,
			Lib:        library.Default(),
		},
	}
	for _, sc := range c.Scenarios {
		parsed, err := sweep.ParseScenario(sc)
		if err != nil {
			return o, fmt.Errorf("dist: config: %w", err)
		}
		o.Scenarios = append(o.Scenarios, parsed)
	}
	for _, m := range c.Modes {
		parsed, err := sweep.ParseMode(m)
		if err != nil {
			return o, fmt.Errorf("dist: config: %w", err)
		}
		o.Modes = append(o.Modes, parsed)
	}
	return o, nil
}

// JobSpec is one leased job on the wire: the sweep coordinates plus the
// coordinator-computed content key the result must be stored under.
type JobSpec struct {
	Index     int    `json:"index"`
	Benchmark string `json:"benchmark"`
	Scenario  string `json:"scenario"`
	Mode      string `json:"mode"`
	Seed      int64  `json:"seed"`
	Key       string `json:"key"`
}

// Job converts the spec back into a sweep job.
func (s JobSpec) Job() (sweep.Job, error) {
	sc, err := sweep.ParseScenario(s.Scenario)
	if err != nil {
		return sweep.Job{}, err
	}
	m, err := sweep.ParseMode(s.Mode)
	if err != nil {
		return sweep.Job{}, err
	}
	return sweep.Job{Index: s.Index, Benchmark: s.Benchmark, Scenario: sc, Mode: m, Seed: s.Seed}, nil
}

// LeaseRequest asks for a job range. Reconnected marks the first lease
// request after the worker survived a coordinator outage (it
// revalidated the config hash and reattached); the coordinator counts
// these on /metrics.
type LeaseRequest struct {
	Worker      string `json:"worker"`
	Reconnected bool   `json:"reconnected,omitempty"`
}

// LeaseResponse grants a lease, reports completion, or asks the worker
// to poll again (all jobs are leased out but the sweep is not done).
type LeaseResponse struct {
	Done     bool      `json:"done,omitempty"`
	LeaseID  string    `json:"lease_id,omitempty"`
	TTLMs    int64     `json:"ttl_ms,omitempty"`
	Jobs     []JobSpec `json:"jobs,omitempty"`
	RetryMs  int64     `json:"retry_ms,omitempty"`
	Deadline string    `json:"-"` // unused on the wire; reserved
}

// HeartbeatRequest renews a lease.
type HeartbeatRequest struct {
	Worker  string `json:"worker"`
	LeaseID string `json:"lease_id"`
}

// HeartbeatResponse acknowledges a renewal.
type HeartbeatResponse struct {
	TTLMs int64 `json:"ttl_ms"`
}

// UploadRecord is one finished job in an upload: the content key, the
// serialized sweep.Result, and whether the job ultimately failed
// (failed results are accounted but never journaled, matching the
// single-process sweep).
type UploadRecord struct {
	Key    string `json:"key"`
	Failed bool   `json:"failed,omitempty"`
	Result []byte `json:"result"`
}

// UploadRequest delivers a lease's results. Attempt numbers re-sends of
// the same upload (the worker increments on retry) so coordinator-side
// fault decisions are transient per attempt, exactly like every other
// fault site.
type UploadRequest struct {
	Worker  string         `json:"worker"`
	LeaseID string         `json:"lease_id"`
	Attempt int            `json:"attempt"`
	Results []UploadRecord `json:"results"`
}

// UploadResponse reports what the merge did with the delivered records.
type UploadResponse struct {
	Merged  int `json:"merged"`  // appended to the journal (first delivery)
	Deduped int `json:"deduped"` // already journaled (duplicate execution absorbed)
	Failed  int `json:"failed"`  // failure records accounted
	Unknown int `json:"unknown"` // keys not in this sweep (ignored)
}

// StatusResponse is the coordinator's progress snapshot.
type StatusResponse struct {
	Total       int `json:"total"`
	Done        int `json:"done"`
	Pending     int `json:"pending"`
	Leased      int `json:"leased"`
	Failed      int `json:"failed"`
	Quarantined int `json:"quarantined"` // poison jobs excluded from the sweep
	Workers     int `json:"workers"`     // live leases

	Complete bool `json:"complete"`
}

// DefaultLeaseTTL bounds how long a dead worker can sit on a job range
// before it is reassigned.
const DefaultLeaseTTL = 10 * time.Second

// DefaultChunkSize is the number of jobs per lease: small enough that a
// straggler or death loses little work, large enough to amortize the
// RPC round-trip.
const DefaultChunkSize = 8

// DefaultRetryMs is how long a worker waits before re-polling when all
// remaining jobs are leased to someone else.
const DefaultRetryMs = 250

// DefaultQuarantineAfter is the poison-job threshold: a job whose
// leases fail this many times across at least two distinct workers
// (or twice this many times total) is quarantined.
const DefaultQuarantineAfter = 3

// DefaultSpeculateFactor triggers straggler re-execution once a
// still-renewing lease has outlived this multiple of the p95
// completed-lease duration (never less than one TTL).
const DefaultSpeculateFactor = 4.0

// DefaultSpeculateMinLeases is how many leases must complete before the
// p95 is trusted for straggler detection.
const DefaultSpeculateMinLeases = 3

// DefaultReconnectTimeout bounds how long a worker keeps trying to
// reattach to an unreachable coordinator before concluding it is gone
// for good and exiting cleanly.
const DefaultReconnectTimeout = 60 * time.Second

// maxReconnectBackoff caps the exponential backoff between reconnect
// probes.
const maxReconnectBackoff = 5 * time.Second
