package dist

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"path/filepath"
	"strings"

	"repro/internal/faults"
	"repro/internal/store"
)

// The coordinator journal makes the coordinator itself crash-safe. The
// result store already makes *results* durable; what dies with a
// kill -9'd coordinator is everything else it decided: which sweep this
// journal belongs to, which leases are live and who holds them, how
// many times each job has burned a lease, and which jobs are
// quarantined. Those decisions are journaled as they are made, through
// the same CRC-framed append-only store machinery as results (torn
// tails truncate at reopen, frames are all-or-nothing), into a `coord`
// subdirectory of the result store. A restarted coordinator pointed at
// the same -store rebuilds its tracker exactly: done jobs stay done,
// unexpired leases are honored for the same worker, strikes and
// quarantine records persist, and the restart itself is counted.
//
// Journaling is best-effort with bounded retries: a coordinator that
// cannot write its state journal degrades to the pre-journal behavior
// (leases die with the process and are lazily re-leased) instead of
// dying — the result store alone is sufficient for correctness, the
// coordinator journal only narrows how much scheduling state a crash
// loses. Chaos plans target journal writes at the JournalFaultSite
// ("dist/coord-journal") via store.Options.FaultSite, so injected torn
// journal frames exercise the same repair path a real mid-write crash
// would.

// JournalFaultSite is the fault-injection site for coordinator journal
// writes. Open the journal store with this as store.Options.FaultSite
// so a shared chaos plan can tear coordinator state frames
// independently of result-store appends.
const JournalFaultSite = "dist/coord-journal"

// JournalDirName is the subdirectory of the result store that holds the
// coordinator state journal.
const JournalDirName = "coord"

// Journal record key prefixes. Every record value is JSON; the key
// prefix selects the type. Re-puts of one key are last-write-wins on
// replay, which is exactly the update semantics renewals and strike
// increments need.
const (
	journalKeyMeta       = "meta"        // JournalMeta
	journalPrefixLease   = "lease/"      // + lease ID → LeaseRecord
	journalPrefixStrike  = "strike/"     // + job content key → StrikeRecord
	journalPrefixQuarant = "quarantine/" // + job content key → QuarantineRecord
)

// JournalMeta pins the journal to one sweep definition and counts
// coordinator attachments.
type JournalMeta struct {
	// ConfigHash is the SHA-256 of the wire SweepConfig. A coordinator
	// restarted against a journal whose hash differs refuses to start:
	// the journal's leases and strikes describe a different job matrix.
	ConfigHash string `json:"config_hash"`
	// Restarts counts coordinators that attached to an already-written
	// journal — i.e. recoveries after a crash or shutdown.
	Restarts int `json:"restarts"`
}

// LeaseRecord is the durable form of one lease grant. It is re-put on
// every renewal (advancing Expiry) and on release (setting Released),
// so the last record for a lease ID is its final word.
type LeaseRecord struct {
	Worker    string   `json:"worker"`
	Keys      []string `json:"keys"` // job content keys in the lease
	GrantedMs int64    `json:"granted_ms"`
	ExpiryMs  int64    `json:"expiry_ms"`
	Released  bool     `json:"released,omitempty"`
}

// StrikeRecord accumulates lease failures per job: how many leases
// covering this job expired or delivered a terminal failure, and which
// workers were holding them.
type StrikeRecord struct {
	Count   int      `json:"count"`
	Workers []string `json:"workers"`
}

// QuarantineRecord is the structured entry for a poison job: a job
// whose leases failed often enough, across enough distinct workers,
// that the coordinator excludes it rather than let it wedge the sweep.
type QuarantineRecord struct {
	Key       string   `json:"key"`
	Benchmark string   `json:"benchmark"`
	Scenario  string   `json:"scenario"`
	Mode      string   `json:"mode"`
	Seed      int64    `json:"seed"`
	Strikes   int      `json:"strikes"`
	Workers   []string `json:"workers"`
}

// JournalDir returns the coordinator journal directory for a result
// store rooted at resultDir.
func JournalDir(resultDir string) string {
	return filepath.Join(resultDir, JournalDirName)
}

// OpenJournal opens (or creates) the coordinator state journal beside
// the result store rooted at resultDir. The fault plan, if any, injects
// at JournalFaultSite — including real torn frames repaired on reopen.
func OpenJournal(resultDir string, plan *faults.Plan) (*store.Store, error) {
	return store.Open(JournalDir(resultDir), store.Options{
		Faults:    plan,
		FaultSite: JournalFaultSite,
	})
}

// configHash is the identity of a sweep definition on the wire.
func configHash(wire []byte) string {
	sum := sha256.Sum256(wire)
	return hex.EncodeToString(sum[:])
}

// JournalEntry is one decoded coordinator journal record, for
// inspection (storetool -coord).
type JournalEntry struct {
	Type       string // "meta", "lease", "strike", "quarantine", or "unknown"
	Key        string // the ID the prefix scoped: lease ID, job key, ""
	Meta       *JournalMeta
	Lease      *LeaseRecord
	Strike     *StrikeRecord
	Quarantine *QuarantineRecord
}

// DecodeJournalRecord classifies and decodes one raw journal record by
// its key prefix. Unknown prefixes decode to Type "unknown" rather than
// erroring, so newer journals stay inspectable by older tools.
func DecodeJournalRecord(key string, value []byte) (JournalEntry, error) {
	switch {
	case key == journalKeyMeta:
		var m JournalMeta
		if err := json.Unmarshal(value, &m); err != nil {
			return JournalEntry{}, fmt.Errorf("dist: decoding journal meta: %w", err)
		}
		return JournalEntry{Type: "meta", Meta: &m}, nil
	case strings.HasPrefix(key, journalPrefixLease):
		var l LeaseRecord
		if err := json.Unmarshal(value, &l); err != nil {
			return JournalEntry{}, fmt.Errorf("dist: decoding lease record %s: %w", key, err)
		}
		return JournalEntry{Type: "lease", Key: strings.TrimPrefix(key, journalPrefixLease), Lease: &l}, nil
	case strings.HasPrefix(key, journalPrefixStrike):
		var s StrikeRecord
		if err := json.Unmarshal(value, &s); err != nil {
			return JournalEntry{}, fmt.Errorf("dist: decoding strike record %s: %w", key, err)
		}
		return JournalEntry{Type: "strike", Key: strings.TrimPrefix(key, journalPrefixStrike), Strike: &s}, nil
	case strings.HasPrefix(key, journalPrefixQuarant):
		var q QuarantineRecord
		if err := json.Unmarshal(value, &q); err != nil {
			return JournalEntry{}, fmt.Errorf("dist: decoding quarantine record %s: %w", key, err)
		}
		return JournalEntry{Type: "quarantine", Key: strings.TrimPrefix(key, journalPrefixQuarant), Quarantine: &q}, nil
	}
	return JournalEntry{Type: "unknown", Key: key}, nil
}
