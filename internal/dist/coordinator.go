// Package dist shards one sweep across processes: a coordinator owns
// the job ledger and the durable result store, and stateless workers
// lease bounded job ranges over HTTP, compute them with the
// internal/sweep engine, and upload results for an idempotent merge.
//
// The fault model is crash-stop plus lossy RPC. Leases carry a TTL
// renewed by heartbeat; a worker that dies (or whose heartbeats are
// dropped) simply stops renewing, and its jobs return to pending for
// reassignment after the TTL lapses. Execution is therefore
// at-least-once — two workers can legitimately compute the same job —
// but storage is exactly-once: every upload merges through
// store.Merge, which skips keys already journaled, and jobs are pure
// functions of their content identity (sweep.Job.StoreKey), so
// duplicate executions produce byte-identical results and the first
// delivery wins without a conflict. The merged journal of a faulted,
// multi-worker run is byte-identical (modulo timing fields) to an
// uninterrupted single-process sweep over the same store.
//
// Crash-stop covers the coordinator too: its scheduling decisions —
// lease grants/renewals/releases, failure strikes, quarantine verdicts
// — are journaled best-effort into a second store (journal.go), so a
// restarted coordinator rebuilds its tracker instead of re-leasing
// ranges live workers still hold. Workers ride out the outage: they
// spill completed-but-unuploaded results, probe until the coordinator
// returns (WorkerConfig.ReconnectTimeout bounds the continuous
// downtime), revalidate the sweep's config hash, and redeliver. Two
// supervision policies run on the lease ledger: jobs whose leases fail
// repeatedly across distinct workers are quarantined out of the sweep
// (CoordinatorConfig.QuarantineAfter), and leases that keep renewing
// far past the p95 completion time have their jobs speculatively
// re-granted (CoordinatorConfig.SpeculateFactor) — the merge's
// first-write-wins makes the duplicate harmless.
//
// Fault sites (internal/faults) cover both halves of the protocol:
// workers inject at dist/lease, dist/heartbeat, dist/upload and
// dist/reconnect (lost RPCs, dropped renewals, failed deliveries,
// stretched outages), and the coordinator injects at dist/merge
// (rejected or torn uploads whose accepted prefix must still dedup on
// retry) and dist/coord-journal (failed or torn decision-journal
// appends, which may cost restart fidelity but never results).
package dist

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync/atomic"
	"time"

	"repro/internal/expt"
	"repro/internal/faults"
	"repro/internal/mcnc"
	"repro/internal/reorder"
	"repro/internal/store"
	"repro/internal/sweep"
)

// CoordinatorConfig configures a sweep coordinator.
type CoordinatorConfig struct {
	// Sweep defines the work. Benchmarks/scenarios/modes/seeds are
	// normalized to explicit lists; stream/callback/store wiring inside
	// is ignored — the coordinator owns durability.
	Sweep sweep.Options
	// Store is the coordinator's result journal; results already present
	// count as done before any lease is granted, so a restarted
	// coordinator resumes instead of resweeping. Required.
	Store *store.Store
	// Journal is the durable coordinator-state journal (see journal.go;
	// OpenJournal opens the conventional location beside Store). When
	// set, lease grants/renewals/releases, strike counts and quarantine
	// verdicts are journaled as they happen, and NewCoordinator rebuilds
	// the tracker from whatever the journal holds: done jobs stay done,
	// unexpired leases are honored for the same worker, quarantines
	// persist. Nil disables durability of scheduler state (results are
	// always durable through Store).
	Journal *store.Store
	// LeaseTTL bounds how long a silent worker holds jobs
	// (default DefaultLeaseTTL).
	LeaseTTL time.Duration
	// ChunkSize is the number of jobs per lease (default
	// DefaultChunkSize).
	ChunkSize int
	// QuarantineAfter is the poison-job strike threshold (see
	// trackerPolicy.quarantineAfter). 0 means DefaultQuarantineAfter;
	// negative disables quarantine, restoring the pre-supervision
	// behavior where a delivered terminal failure completes the job.
	QuarantineAfter int
	// SpeculateFactor is the straggler re-execution multiple over the
	// p95 completed-lease duration (see trackerPolicy.speculateFactor).
	// 0 means DefaultSpeculateFactor; negative disables speculation.
	SpeculateFactor float64
	// Faults optionally injects at the dist/merge site, keyed by lease
	// ID and the upload's attempt number.
	Faults *faults.Plan

	// now is the test clock (nil: time.Now).
	now func() time.Time
}

// Coordinator is the http.Handler side of a distributed sweep.
type Coordinator struct {
	cfg     CoordinatorConfig
	opt     sweep.Options // normalized
	wire    []byte        // marshaled SweepConfig, served verbatim
	hash    string        // SHA-256 of wire, pinning the journal to this sweep
	tracker *tracker
	store   *store.Store
	journal *store.Store // nil: scheduler state is memory-only
	mux     *http.ServeMux

	resumed  int // jobs already journaled at startup
	restarts int // coordinators that attached to this journal before us

	reconnects   atomic.Uint64 // workers that survived an outage and reattached
	journalDrops atomic.Uint64 // state records lost to persistent journal write failures
}

// NewCoordinator validates the sweep, enumerates its jobs, marks those
// already present in the store as done, and returns a ready handler.
func NewCoordinator(cfg CoordinatorConfig) (*Coordinator, error) {
	if cfg.Store == nil {
		return nil, errors.New("dist: coordinator requires a store")
	}
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = DefaultLeaseTTL
	}
	if cfg.ChunkSize <= 0 {
		cfg.ChunkSize = DefaultChunkSize
	}
	if cfg.now == nil {
		cfg.now = time.Now
	}

	opt := cfg.Sweep
	// Normalize to explicit lists so the wire config, the job
	// enumeration, and every worker agree on the same cross product.
	if len(opt.Benchmarks) == 0 {
		opt.Benchmarks = mcnc.Names()
	}
	for _, b := range opt.Benchmarks {
		if _, ok := mcnc.EmbeddedSource(b); ok {
			continue
		}
		if _, ok := mcnc.Find(b); !ok {
			return nil, fmt.Errorf("dist: unknown benchmark %q", b)
		}
	}
	// Same defaults sweep.Jobs applies, made explicit so the wire
	// config, the job enumeration, and every worker agree.
	if len(opt.Scenarios) == 0 {
		opt.Scenarios = []expt.Scenario{expt.ScenarioA, expt.ScenarioB}
	}
	if len(opt.Modes) == 0 {
		opt.Modes = []reorder.Mode{reorder.Full}
	}
	if len(opt.Seeds) == 0 {
		opt.Seeds = []int64{opt.Expt.Seed}
	}
	wire, err := json.Marshal(ConfigFromOptions(opt))
	if err != nil {
		return nil, fmt.Errorf("dist: marshaling config: %w", err)
	}

	jobs := sweep.Jobs(opt)
	keys := make([]string, len(jobs))
	for i, j := range jobs {
		keys[i] = j.StoreKey(opt)
	}

	c := &Coordinator{
		cfg:     cfg,
		opt:     opt,
		wire:    wire,
		hash:    configHash(wire),
		tracker: newTracker(jobs, keys, cfg.LeaseTTL, cfg.ChunkSize, cfg.now),
		store:   cfg.Store,
		journal: cfg.Journal,
		mux:     http.NewServeMux(),
	}
	switch {
	case cfg.QuarantineAfter > 0:
		c.tracker.policy.quarantineAfter = cfg.QuarantineAfter
	case cfg.QuarantineAfter == 0:
		c.tracker.policy.quarantineAfter = DefaultQuarantineAfter
	}
	switch {
	case cfg.SpeculateFactor > 0:
		c.tracker.policy.speculateFactor = cfg.SpeculateFactor
	case cfg.SpeculateFactor == 0:
		c.tracker.policy.speculateFactor = DefaultSpeculateFactor
	}
	c.tracker.policy.speculateMinLeases = DefaultSpeculateMinLeases

	// Resume: a key already journaled is a finished job — a restarted
	// coordinator (or one pointed at a prior single-process sweep's
	// journal) only distributes the remainder.
	for i, k := range keys {
		if c.store.Has(k) {
			if c.tracker.markDone(i, nil) {
				c.resumed++
			}
		}
	}
	// Rebuild scheduler state from the coordinator journal, then attach
	// the live journal hook (replay must never re-journal itself).
	if c.journal != nil {
		if err := c.rebuildFromJournal(); err != nil {
			return nil, err
		}
		c.tracker.journal = c.journalPut
	}

	c.mux.HandleFunc(PathConfig, c.handleConfig)
	c.mux.HandleFunc(PathLease, c.handleLease)
	c.mux.HandleFunc(PathHeartbeat, c.handleHeartbeat)
	c.mux.HandleFunc(PathUpload, c.handleUpload)
	c.mux.HandleFunc(PathStatus, c.handleStatus)
	c.mux.HandleFunc("/healthz", c.handleHealthz)
	c.mux.HandleFunc("/metrics", c.handleMetrics)
	return c, nil
}

// rebuildFromJournal replays the coordinator state journal into the
// tracker: validates the sweep identity, restores strikes and
// quarantines, honors unexpired leases for their original workers, and
// counts this attachment as a restart if the journal was already
// written. Replay order is meta → strikes → quarantines → leases so a
// lease never claims a job the journal already quarantined.
func (c *Coordinator) rebuildFromJournal() error {
	type leaseEntry struct {
		id  string
		rec LeaseRecord
	}
	var (
		meta        *JournalMeta
		strikes     = map[int]StrikeRecord{}
		quarantines = map[int]QuarantineRecord{}
		leases      []leaseEntry
	)
	for _, key := range c.journal.Keys() {
		raw, ok := c.journal.Get(key)
		if !ok {
			continue
		}
		ent, err := DecodeJournalRecord(key, raw)
		if err != nil {
			return fmt.Errorf("dist: corrupt coordinator journal: %w", err)
		}
		switch ent.Type {
		case "meta":
			meta = ent.Meta
		case "strike":
			if idx, ok := c.tracker.byKey[ent.Key]; ok {
				strikes[idx] = *ent.Strike
			}
		case "quarantine":
			if idx, ok := c.tracker.byKey[ent.Key]; ok {
				quarantines[idx] = *ent.Quarantine
			}
		case "lease":
			leases = append(leases, leaseEntry{id: ent.Key, rec: *ent.Lease})
		}
	}
	if meta != nil && meta.ConfigHash != c.hash {
		return fmt.Errorf("dist: coordinator journal %s belongs to a different sweep (config hash %.12s, ours %.12s); point -store at the matching journal or remove it",
			c.journal.Dir(), meta.ConfigHash, c.hash)
	}
	if meta != nil {
		c.restarts = meta.Restarts + 1
	}
	c.journalPut(journalKeyMeta, JournalMeta{ConfigHash: c.hash, Restarts: c.restarts})

	t := c.tracker
	t.mu.Lock()
	defer t.mu.Unlock()
	for idx, rec := range strikes {
		t.restoreStrike(idx, rec)
	}
	for idx, rec := range quarantines {
		t.restoreQuarantine(idx, rec)
	}
	now := c.cfg.now()
	for _, le := range leases {
		t.bumpLeaseSeqLocked(le.id) // even dead IDs are never reissued
		if le.rec.Released || !time.UnixMilli(le.rec.ExpiryMs).After(now) {
			continue // cleanly retired or lazily expired; jobs stay pending
		}
		t.restoreLease(le.id, le.rec)
	}
	return nil
}

// journalPut appends one state record, retrying transient write faults
// (including injected dist/coord-journal tears, which the store repairs
// in place exactly as a reopen after a crash would). Persistent failure
// drops the record and degrades durability, never availability: the
// result store alone keeps the sweep correct.
func (c *Coordinator) journalPut(key string, v any) {
	if c.journal == nil {
		return
	}
	raw, err := json.Marshal(v)
	if err != nil {
		c.journalDrops.Add(1)
		return
	}
	for attempt := 0; attempt < 3; attempt++ {
		err = c.journal.Put(key, raw)
		if err == nil {
			return
		}
		if !faults.Retryable(err) {
			break
		}
	}
	c.journalDrops.Add(1)
}

// ServeHTTP implements http.Handler.
func (c *Coordinator) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	c.mux.ServeHTTP(w, r)
}

// Done is closed when every job is finished (delivered or resumed).
func (c *Coordinator) Done() <-chan struct{} { return c.tracker.doneCh }

// Status snapshots sweep progress.
func (c *Coordinator) Status() StatusResponse { return c.tracker.status() }

// Restarts reports how many coordinator generations preceded this one
// over the same journal (0 for a fresh sweep, or when no journal is
// configured).
func (c *Coordinator) Restarts() int { return c.restarts }

// Summary assembles the finished sweep in deterministic job order from
// the journal plus the in-memory failure records. It errors if the
// sweep is incomplete or a journaled result fails to decode. A
// quarantined job reports as a failure unless its result reached the
// store anyway (a zombie worker's late delivery still merges) — the
// data is real even when the scheduler gave up on the job.
func (c *Coordinator) Summary() (*sweep.Summary, error) {
	st := c.tracker.status()
	if !st.Complete {
		return nil, fmt.Errorf("dist: sweep incomplete: %d/%d jobs done", st.Done+st.Quarantined, st.Total)
	}
	c.tracker.mu.Lock()
	failed := make(map[int]sweep.Result, len(c.tracker.failed))
	for i, r := range c.tracker.failed {
		failed[i] = r
	}
	keys := c.tracker.keys
	jobs := c.tracker.jobs
	c.tracker.mu.Unlock()
	quarantined := c.tracker.quarantineRecords()

	results := make([]sweep.Result, 0, len(jobs))
	for i, j := range jobs {
		if r, ok := failed[i]; ok {
			r.Index = j.Index
			results = append(results, r)
			continue
		}
		raw, ok := c.store.Get(keys[i])
		if !ok {
			if q, isQ := quarantined[i]; isQ {
				results = append(results, sweep.Result{
					Index: j.Index, Benchmark: j.Benchmark, Scenario: j.Scenario.String(),
					Mode: j.Mode.String(), Seed: j.Seed,
					Err:      fmt.Sprintf("quarantined after %d lease failures across %d workers", q.Strikes, len(q.Workers)),
					FailKind: "quarantine",
				})
				continue
			}
			return nil, fmt.Errorf("dist: job %d (%s) done but absent from store", i, j.Benchmark)
		}
		var r sweep.Result
		if err := json.Unmarshal(raw, &r); err != nil {
			return nil, fmt.Errorf("dist: decoding stored result for job %d: %w", i, err)
		}
		r.Index = j.Index // duplicate-shaped sweeps share a key; reindex
		results = append(results, r)
	}
	return sweep.Summarize(results), nil
}

// ---------------------------------------------------------------------
// Handlers. Same conventions as internal/serve: strict JSON decode,
// {"error":{code,message}} envelopes, Prometheus text /metrics.

func (c *Coordinator) handleConfig(w http.ResponseWriter, r *http.Request) {
	if err := requireGET(r); err != nil {
		writeError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(c.wire)
}

func (c *Coordinator) handleLease(w http.ResponseWriter, r *http.Request) {
	var req LeaseRequest
	if err := decodeJSON(w, r, 1<<20, &req); err != nil {
		writeError(w, err)
		return
	}
	if req.Worker == "" {
		writeError(w, errf(http.StatusBadRequest, "invalid_request", "\"worker\" is required"))
		return
	}
	if req.Reconnected {
		c.reconnects.Add(1)
	}
	l, done := c.tracker.grant(req.Worker)
	resp := LeaseResponse{Done: done}
	if l != nil {
		resp.LeaseID = l.id
		resp.TTLMs = c.cfg.LeaseTTL.Milliseconds()
		c.tracker.mu.Lock()
		for _, idx := range l.jobs {
			j := c.tracker.jobs[idx]
			resp.Jobs = append(resp.Jobs, JobSpec{
				Index:     j.Index,
				Benchmark: j.Benchmark,
				Scenario:  j.Scenario.String(),
				Mode:      j.Mode.String(),
				Seed:      j.Seed,
				Key:       c.tracker.keys[idx],
			})
		}
		c.tracker.mu.Unlock()
	} else if !done {
		resp.RetryMs = DefaultRetryMs
	}
	writeJSON(w, resp)
}

func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req HeartbeatRequest
	if err := decodeJSON(w, r, 1<<20, &req); err != nil {
		writeError(w, err)
		return
	}
	if !c.tracker.renew(req.LeaseID) {
		writeError(w, errf(http.StatusGone, codeLeaseGone,
			"lease %s expired or was never granted", req.LeaseID))
		return
	}
	writeJSON(w, HeartbeatResponse{TTLMs: c.cfg.LeaseTTL.Milliseconds()})
}

func (c *Coordinator) handleUpload(w http.ResponseWriter, r *http.Request) {
	var req UploadRequest
	if err := decodeJSON(w, r, 64<<20, &req); err != nil {
		writeError(w, err)
		return
	}
	if req.Attempt < 1 {
		req.Attempt = 1
	}

	// Coordinator-side fault site. Error rejects the whole upload;
	// TornWrite accepts a seeded prefix and then "crashes" — the
	// worker's retry re-delivers everything and the accepted prefix
	// dedups, which is exactly the idempotence this protocol exists to
	// provide. Panic is contained to a rejection (the coordinator must
	// not die), Delay just stalls.
	n := len(req.Results)
	switch c.cfg.Faults.Decide(siteMerge, req.LeaseID, req.Attempt) {
	case faults.Error, faults.Panic:
		writeError(w, errf(http.StatusServiceUnavailable, "injected_fault",
			"injected merge failure for lease %s attempt %d", req.LeaseID, req.Attempt))
		return
	case faults.TornWrite:
		keep := c.cfg.Faults.TearAt(siteMerge, req.LeaseID, req.Attempt, n)
		c.mergeRecords(req.Worker, req.Results[:keep])
		writeError(w, errf(http.StatusServiceUnavailable, "injected_fault",
			"injected torn merge for lease %s attempt %d: accepted %d/%d", req.LeaseID, req.Attempt, keep, n))
		return
	case faults.Delay:
		time.Sleep(c.cfg.Faults.DelayFor(siteMerge, req.LeaseID, req.Attempt))
	}

	resp := c.mergeRecords(req.Worker, req.Results)
	// A successful upload retires the lease; any jobs the worker chose
	// not to deliver go straight back to pending.
	c.tracker.release(req.LeaseID)
	writeJSON(w, resp)
}

// mergeRecords applies uploaded records to the ledger and the journal.
// Failures are accounted but never journaled in the result store
// (matching the single-process sweep, which only journals successes);
// with quarantine enabled a failure charges a strike and the job is
// retried on another worker instead of completing immediately.
// Successes merge idempotently through store.Merge.
func (c *Coordinator) mergeRecords(worker string, recs []UploadRecord) UploadResponse {
	var resp UploadResponse
	for _, rec := range recs {
		idx, ok := c.tracker.jobIndex(rec.Key)
		if !ok {
			resp.Unknown++
			continue
		}
		if rec.Failed {
			var r sweep.Result
			if err := json.Unmarshal(rec.Result, &r); err == nil {
				c.tracker.markFailed(idx, worker, &r)
			}
			resp.Failed++
			continue
		}
		added, _, err := c.store.Merge([]store.Record{{Key: rec.Key, Value: rec.Result}})
		if err != nil {
			// A failed append leaves the job un-done; the lease will
			// expire and the job will be recomputed and re-delivered.
			continue
		}
		if added == 1 {
			resp.Merged++
		} else {
			resp.Deduped++
		}
		c.tracker.markDone(idx, nil)
	}
	return resp
}

func (c *Coordinator) handleStatus(w http.ResponseWriter, r *http.Request) {
	if err := requireGET(r); err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, c.tracker.status())
}

func (c *Coordinator) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if err := requireGET(r); err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, map[string]string{"status": "ok"})
}

func (c *Coordinator) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if err := requireGET(r); err != nil {
		writeError(w, err)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	c.writeMetrics(w)
}

func (c *Coordinator) writeMetrics(w io.Writer) {
	st := c.tracker.status()
	granted, renewed, expired, speculated := c.tracker.counters()
	gauge := func(name, help string, v any) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %v\n", name, help, name, name, v)
	}
	counter := func(name, help string, v any) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %v\n", name, help, name, name, v)
	}
	gauge("dist_jobs_total", "Jobs in this sweep.", st.Total)
	gauge("dist_jobs_done", "Jobs finished (delivered or resumed).", st.Done)
	gauge("dist_jobs_pending", "Jobs waiting for a lease.", st.Pending)
	gauge("dist_jobs_leased", "Jobs currently leased out.", st.Leased)
	gauge("dist_jobs_failed", "Jobs that ended in a terminal failure.", st.Failed)
	gauge("dist_jobs_resumed", "Jobs satisfied from the journal at startup.", c.resumed)
	gauge("dist_jobs_quarantined", "Poison jobs excluded after repeated lease failures across workers.", st.Quarantined)
	counter("dist_jobs_speculated_total", "Jobs re-granted past a straggling (still-renewing) lease.", speculated)
	counter("dist_leases_granted_total", "Leases handed out.", granted)
	counter("dist_leases_renewed_total", "Heartbeat renewals honored.", renewed)
	counter("dist_leases_expired_total", "Leases reclaimed after TTL lapse (worker death or lost heartbeats).", expired)
	counter("dist_coord_restarts_total", "Coordinators that attached to an already-written state journal (crash/shutdown recoveries).", c.restarts)
	counter("dist_worker_reconnects_total", "Workers that survived a coordinator outage and reattached after config revalidation.", c.reconnects.Load())
	counter("dist_coord_journal_drops_total", "Coordinator state records lost to persistent journal write failures.", c.journalDrops.Load())

	stats := c.store.Stats()
	counter("dist_results_merged_total", "Uploaded results appended to the journal.", stats.MergeAdded)
	counter("dist_results_deduped_total", "Uploaded results already journaled (duplicate executions absorbed).", stats.MergeSkipped)
	gauge("dist_store_records", "Distinct results in the journal.", stats.Records)
	gauge("dist_store_segments", "Journal segments on disk.", stats.Segments)
	gauge("dist_store_discarded_bytes", "Torn-tail bytes discarded when the journal was opened.", stats.DiscardedBytes)
}

// Serve runs the coordinator on an *http.Server until ctx is canceled
// or the listener fails.
func Serve(ctx context.Context, addr string, c *Coordinator) error {
	srv := &http.Server{Addr: addr, Handler: c}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	select {
	case <-ctx.Done():
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(shutdownCtx)
		return ctx.Err()
	case err := <-errCh:
		return err
	}
}

// ---------------------------------------------------------------------
// Shared HTTP plumbing (same idiom as internal/serve, whose helpers are
// unexported).

const codeLeaseGone = "lease_gone"

// Fault sites.
const (
	siteLease     = "dist/lease"
	siteHeartbeat = "dist/heartbeat"
	siteUpload    = "dist/upload"
	siteMerge     = "dist/merge"
	siteReconnect = "dist/reconnect"
)

// httpError renders as {"error":{"code","message"}} with its status.
type httpError struct {
	Status  int    `json:"-"`
	Code    string `json:"code"`
	Message string `json:"message"`
}

func (e *httpError) Error() string { return e.Code + ": " + e.Message }

func errf(status int, code, format string, args ...any) *httpError {
	return &httpError{Status: status, Code: code, Message: fmt.Sprintf(format, args...)}
}

func writeError(w http.ResponseWriter, err error) {
	var he *httpError
	if !errors.As(err, &he) {
		he = errf(http.StatusInternalServerError, "internal", "%v", err)
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(he.Status)
	json.NewEncoder(w).Encode(map[string]*httpError{"error": he})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

func decodeJSON(w http.ResponseWriter, r *http.Request, maxBody int64, dst any) error {
	if r.Method != http.MethodPost {
		return errf(http.StatusMethodNotAllowed, "method_not_allowed", "%s requires POST", r.URL.Path)
	}
	r.Body = http.MaxBytesReader(w, r.Body, maxBody)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			return errf(http.StatusRequestEntityTooLarge, "body_too_large",
				"request body exceeds %d bytes", mbe.Limit)
		}
		return errf(http.StatusBadRequest, "invalid_json", "decoding request: %v", err)
	}
	if dec.More() {
		return errf(http.StatusBadRequest, "invalid_json", "trailing data after JSON object")
	}
	return nil
}

func requireGET(r *http.Request) error {
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		return errf(http.StatusMethodNotAllowed, "method_not_allowed", "%s requires GET", r.URL.Path)
	}
	return nil
}
