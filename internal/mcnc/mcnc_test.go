package mcnc

import (
	"strings"
	"testing"

	"repro/internal/library"
	"repro/internal/mapper"
	"repro/internal/netlist"
)

func TestTable3Shape(t *testing.T) {
	if len(Table3) != 39 {
		t.Fatalf("Table3 has %d rows, want 39 (the paper's benchmark count)", len(Table3))
	}
	seen := map[string]bool{}
	for _, e := range Table3 {
		if e.Name == "" || e.Gates <= 0 {
			t.Errorf("bad entry %+v", e)
		}
		if seen[e.Name] {
			t.Errorf("duplicate benchmark %s", e.Name)
		}
		seen[e.Name] = true
	}
}

func TestSyntheticGateCountExact(t *testing.T) {
	lib := library.Default()
	for _, e := range []Entry{{"tiny", 1}, {"small", 24}, {"mid", 148}} {
		c, err := Synthetic(e.Name, e.Gates, 42, lib)
		if err != nil {
			t.Fatal(err)
		}
		if len(c.Gates) != e.Gates {
			t.Errorf("%s: %d gates, want %d", e.Name, len(c.Gates), e.Gates)
		}
		if err := c.Validate(); err != nil {
			t.Errorf("%s: invalid: %v", e.Name, err)
		}
	}
}

func TestSyntheticDeterministic(t *testing.T) {
	lib := library.Default()
	c1, err := Synthetic("x", 100, 7, lib)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := Synthetic("x", 100, 7, lib)
	if err != nil {
		t.Fatal(err)
	}
	if len(c1.Gates) != len(c2.Gates) {
		t.Fatal("different gate counts")
	}
	for i := range c1.Gates {
		a, b := c1.Gates[i], c2.Gates[i]
		if a.Cell.Name != b.Cell.Name || a.Out != b.Out {
			t.Fatalf("gate %d differs: %s/%s vs %s/%s", i, a.Cell.Name, a.Out, b.Cell.Name, b.Out)
		}
		for p := range a.Pins {
			if a.Pins[p] != b.Pins[p] {
				t.Fatalf("gate %d pin %d differs", i, p)
			}
		}
	}
	// Different seeds must differ somewhere.
	c3, err := Synthetic("x", 100, 8, lib)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range c1.Gates {
		if c1.Gates[i].Cell.Name != c3.Gates[i].Cell.Name {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical cell sequences")
	}
}

func TestSyntheticRejectsBadCount(t *testing.T) {
	if _, err := Synthetic("bad", 0, 1, library.Default()); err == nil {
		t.Error("zero gates accepted")
	}
}

func TestSyntheticHasComplexGates(t *testing.T) {
	// The reordering technique needs series stacks; the mix must include
	// complex gates on any reasonably sized benchmark.
	c, err := Synthetic("probe", 200, 3, library.Default())
	if err != nil {
		t.Fatal(err)
	}
	complexCount := 0
	for _, g := range c.Gates {
		if strings.HasPrefix(g.Cell.Name, "aoi") || strings.HasPrefix(g.Cell.Name, "oai") {
			complexCount++
		}
	}
	if complexCount < 20 {
		t.Errorf("only %d complex gates in 200", complexCount)
	}
}

func TestLoadAllTable3(t *testing.T) {
	if testing.Short() {
		t.Skip("loads all 39 benchmarks")
	}
	lib := library.Default()
	for _, e := range Table3 {
		c, err := Load(e.Name, lib)
		if err != nil {
			t.Errorf("%s: %v", e.Name, err)
			continue
		}
		if len(c.Gates) != e.Gates {
			t.Errorf("%s: %d gates, want %d", e.Name, len(c.Gates), e.Gates)
		}
	}
}

func TestLoadUnknown(t *testing.T) {
	if _, err := Load("nonesuch", library.Default()); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestEmbeddedAllParseAndMap(t *testing.T) {
	lib := library.Default()
	for _, name := range EmbeddedNames() {
		src, ok := EmbeddedSource(name)
		if !ok {
			t.Errorf("%s: no source", name)
			continue
		}
		nw, err := netlist.ParseBLIF(strings.NewReader(src))
		if err != nil {
			t.Errorf("%s: parse: %v", name, err)
			continue
		}
		c, err := Load(name, lib)
		if err != nil {
			t.Errorf("%s: load: %v", name, err)
			continue
		}
		if len(c.Gates) == 0 {
			t.Errorf("%s: empty circuit", name)
		}
		if len(c.Outputs) != len(nw.Outputs) {
			t.Errorf("%s: output count changed in mapping", name)
		}
	}
}

func TestC17Function(t *testing.T) {
	// Spot-check the classic: with all inputs 1, both outputs are …
	// o22 = nand(n10,n16); n10 = nand(i1,i3)=0; so o22 = 1.
	c, err := Load("c17", library.Default())
	if err != nil {
		t.Fatal(err)
	}
	in := map[string]bool{"i1": true, "i2": true, "i3": true, "i6": true, "i7": true}
	val, err := c.Eval(in)
	if err != nil {
		t.Fatal(err)
	}
	if !val["o22"] {
		t.Error("c17 o22 wrong for all-ones")
	}
}

func TestRCA4Adds(t *testing.T) {
	c, err := Load("rca4", library.Default())
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		a, b  uint
		cin   bool
		want  uint
		carry bool
	}{
		{0, 0, false, 0, false},
		{5, 3, false, 8, false},
		{15, 1, false, 0, true},
		{9, 6, true, 0, true},
		{7, 7, false, 14, false},
	} {
		in := map[string]bool{"cin": tc.cin}
		for i := 0; i < 4; i++ {
			in["a"+string(rune('0'+i))] = tc.a>>i&1 == 1
			in["b"+string(rune('0'+i))] = tc.b>>i&1 == 1
		}
		val, err := c.Eval(in)
		if err != nil {
			t.Fatal(err)
		}
		var got uint
		for i := 0; i < 4; i++ {
			if val["s"+string(rune('0'+i))] {
				got |= 1 << i
			}
		}
		if got != tc.want || val["cout"] != tc.carry {
			t.Errorf("%d+%d+%v = %d carry %v, want %d carry %v",
				tc.a, tc.b, tc.cin, got, val["cout"], tc.want, tc.carry)
		}
	}
}

func TestParityFunction(t *testing.T) {
	c, err := Load("par8", library.Default())
	if err != nil {
		t.Fatal(err)
	}
	for m := uint(0); m < 256; m += 17 { // sample
		in := map[string]bool{}
		ones := 0
		for i := 0; i < 8; i++ {
			v := m>>i&1 == 1
			in["x"+string(rune('0'+i))] = v
			if v {
				ones++
			}
		}
		val, err := c.Eval(in)
		if err != nil {
			t.Fatal(err)
		}
		if val["p"] != (ones%2 == 1) {
			t.Errorf("parity(%08b) = %v", m, val["p"])
		}
	}
}

func TestRippleCarryAdderBLIFParses(t *testing.T) {
	for _, bits := range []int{1, 2, 16} {
		src := RippleCarryAdderBLIF(bits)
		if _, err := netlist.ParseBLIF(strings.NewReader(src)); err != nil {
			t.Errorf("rca%d: %v", bits, err)
		}
	}
}

func BenchmarkSynthetic148(b *testing.B) {
	lib := library.Default()
	for i := 0; i < b.N; i++ {
		if _, err := Synthetic("alu2", 148, 42, lib); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLoadRCA8(b *testing.B) {
	lib := library.Default()
	for i := 0; i < b.N; i++ {
		if _, err := Load("rca8", lib); err != nil {
			b.Fatal(err)
		}
	}
}

func TestMul2Function(t *testing.T) {
	c, err := Load("mul2", library.Default())
	if err != nil {
		t.Fatal(err)
	}
	for a := uint(0); a < 4; a++ {
		for b := uint(0); b < 4; b++ {
			in := map[string]bool{
				"a0": a&1 == 1, "a1": a&2 == 2,
				"b0": b&1 == 1, "b1": b&2 == 2,
			}
			val, err := c.Eval(in)
			if err != nil {
				t.Fatal(err)
			}
			var p uint
			for i := 0; i < 4; i++ {
				if val["p"+string(rune('0'+i))] {
					p |= 1 << i
				}
			}
			if p != a*b {
				t.Errorf("%d × %d = %d, want %d", a, b, p, a*b)
			}
		}
	}
}

func TestCsel4Adds(t *testing.T) {
	c, err := Load("csel4", library.Default())
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		a, b uint
		cin  bool
	}{{0, 0, false}, {5, 10, false}, {15, 15, true}, {7, 9, false}, {12, 3, true}} {
		in := map[string]bool{"cin": tc.cin}
		for i := 0; i < 4; i++ {
			in["a"+string(rune('0'+i))] = tc.a>>i&1 == 1
			in["b"+string(rune('0'+i))] = tc.b>>i&1 == 1
		}
		val, err := c.Eval(in)
		if err != nil {
			t.Fatal(err)
		}
		var got uint
		for i := 0; i < 4; i++ {
			if val["s"+string(rune('0'+i))] {
				got |= 1 << i
			}
		}
		want := tc.a + tc.b
		if tc.cin {
			want++
		}
		if got != want&15 || val["cout"] != (want > 15) {
			t.Errorf("%d+%d+%v = %d cout %v, want %d cout %v",
				tc.a, tc.b, tc.cin, got, val["cout"], want&15, want > 15)
		}
	}
}

func TestBCD7SegDigits(t *testing.T) {
	c, err := Load("bcd7seg", library.Default())
	if err != nil {
		t.Fatal(err)
	}
	// Segment patterns for digits 0-9 (a,b,c,d,e,f,g).
	want := map[uint]string{
		0: "1111110", 1: "0110000", 2: "1101101", 3: "1111001",
		4: "0110011", 5: "1011011", 6: "1011111", 7: "1110000",
		8: "1111111", 9: "1111011",
	}
	segs := []string{"sa", "sb", "sc", "sd", "se", "sf", "sg"}
	for digit, pattern := range want {
		in := map[string]bool{
			"d0": digit&1 == 1, "d1": digit&2 == 2,
			"d2": digit&4 == 4, "d3": digit&8 == 8,
		}
		val, err := c.Eval(in)
		if err != nil {
			t.Fatal(err)
		}
		for i, s := range segs {
			if val[s] != (pattern[i] == '1') {
				t.Errorf("digit %d segment %s = %v, want %c", digit, s, val[s], pattern[i])
			}
		}
	}
}

// TestEmbeddedSourceLookup covers the raw-source accessor both ways.
func TestEmbeddedSourceLookup(t *testing.T) {
	src, ok := EmbeddedSource("c17")
	if !ok || !strings.Contains(src, ".model c17") {
		t.Fatalf("c17 source missing: ok=%v", ok)
	}
	if _, ok := EmbeddedSource("not-a-benchmark"); ok {
		t.Fatal("unknown embedded source resolved")
	}
}

// TestCorruptedEmbeddedSources pushes systematically damaged variants of
// the embedded netlists through the same parse→map pipeline Load uses:
// every corruption must surface as an error, never a panic or a silently
// wrong circuit.
func TestCorruptedEmbeddedSources(t *testing.T) {
	base, ok := EmbeddedSource("c17")
	if !ok {
		t.Fatal("c17 missing")
	}
	lib := library.Default()
	corruptions := []struct {
		name string
		mut  func(string) string
	}{
		{"duplicate driver", func(s string) string {
			// Duplicate a .names block: its output net becomes multiply driven.
			return strings.Replace(s, ".names i1 i3 n10\n11 0\n", ".names i1 i3 n10\n11 0\n.names i1 i3 n10\n11 0\n", 1)
		}},
		{"undriven output", func(s string) string {
			return strings.Replace(s, ".outputs o22 o23", ".outputs o22 o23 ghost", 1)
		}},
		{"undriven node input", func(s string) string {
			return strings.Replace(s, ".names n10 n16 o22", ".names n10 nope o22", 1)
		}},
		{"names without output", func(s string) string {
			return strings.Replace(s, ".names i1 i3 n10", ".names", 1)
		}},
		{"latch", func(s string) string {
			return strings.Replace(s, ".end", ".latch a b\n.end", 1)
		}},
		{"second model", func(s string) string {
			return strings.Replace(s, ".inputs", ".model again\n.inputs", 1)
		}},
		{"cover row outside names", func(s string) string {
			return strings.Replace(s, ".model c17\n", ".model c17\n11 0\n", 1)
		}},
		{"content after end", func(s string) string {
			return s + ".inputs zz\n"
		}},
		{"unsupported construct", func(s string) string {
			return strings.Replace(s, ".inputs", ".clock clk\n.inputs", 1)
		}},
	}
	for _, tc := range corruptions {
		t.Run(tc.name, func(t *testing.T) {
			src := tc.mut(base)
			if src == base {
				t.Fatal("mutation was a no-op; test is vacuous")
			}
			nw, err := netlist.ParseBLIF(strings.NewReader(src))
			if err != nil {
				return // rejected at parse — good
			}
			if _, err := mapper.Map(nw, lib); err == nil {
				t.Fatalf("corruption accepted end to end:\n%s", src)
			}
		})
	}
}

// TestSyntheticSeedSensitivity: different seeds must yield different
// circuits (the stand-ins are pseudo-random, not degenerate).
func TestSyntheticSeedSensitivity(t *testing.T) {
	lib := library.Default()
	a, err := Synthetic("x", 30, 1, lib)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Synthetic("x", 30, 2, lib)
	if err != nil {
		t.Fatal(err)
	}
	same := len(a.Gates) == len(b.Gates)
	if same {
		for i := range a.Gates {
			if a.Gates[i].Cell.Name != b.Gates[i].Cell.Name {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("seeds 1 and 2 generated identical cell sequences")
	}
}
