// Package mcnc provides the benchmark circuits for the Table 3
// experiments. The original MCNC netlists are not redistributable here,
// so the suite has two parts (see DESIGN.md §3 for the substitution
// rationale):
//
//   - Embedded classics: small, hand-written BLIF netlists (ripple-carry
//     adders, ISCAS c17, a decoder, a multiplexer, parity and majority,
//     a comparator) that exercise the full BLIF → map → optimize flow and
//     reproduce the paper's motivating structures exactly.
//   - Synthetic stand-ins: for each of the paper's 39 MCNC benchmark rows,
//     a deterministic pseudo-random combinational DAG with the same mapped
//     gate count as the paper reports (column G), built directly on the
//     Table 2 library.
package mcnc

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"strings"

	"repro/internal/circuit"
	"repro/internal/library"
	"repro/internal/mapper"
	"repro/internal/netlist"
)

// Entry is one row of the paper's Table 3 benchmark list. Gates is the
// paper's column G. (The OCR of the paper lost the name column and two G
// values; names are reassigned from the standard MCNC combinational set
// in order and the two unreadable counts are reconstructed as 96 and 88 —
// see EXPERIMENTS.md.)
type Entry struct {
	Name  string
	Gates int
}

// Table3 lists the 39 benchmarks of the paper's evaluation.
var Table3 = []Entry{
	{"9symml", 224}, {"alu2", 148}, {"b9", 316}, {"c8", 96},
	{"cc", 117}, {"cht", 43}, {"cm138a", 24}, {"cm150a", 88},
	{"cm151a", 64}, {"cm152a", 55}, {"cm162a", 128}, {"cm163a", 45},
	{"cm42a", 459}, {"cm82a", 196}, {"cm85a", 47}, {"cmb", 64},
	{"comp", 67}, {"cordic", 62}, {"count", 49}, {"cu", 41},
	{"decod", 73}, {"example2", 84}, {"f51m", 155}, {"frg1", 50},
	{"lal", 540}, {"majority", 401}, {"misex1", 235}, {"misex2", 424},
	{"mux", 442}, {"pcle", 222}, {"pcler8", 284}, {"pm1", 411},
	{"sct", 516}, {"tcon", 408}, {"term1", 206}, {"ttt2", 132},
	{"unreg", 485}, {"x2", 244}, {"z4ml", 313},
}

// Names returns the Table 3 benchmark names in order.
func Names() []string {
	names := make([]string, len(Table3))
	for i, e := range Table3 {
		names[i] = e.Name
	}
	return names
}

// Find returns the Table 3 entry with the given name.
func Find(name string) (Entry, bool) {
	for _, e := range Table3 {
		if e.Name == name {
			return e, true
		}
	}
	return Entry{}, false
}

// Load returns the named benchmark as a mapped circuit: an embedded
// classic when one exists under that name, otherwise the synthetic
// stand-in with the paper's gate count.
func Load(name string, lib *library.Library) (*circuit.Circuit, error) {
	if src, ok := embedded[name]; ok {
		nw, err := netlist.ParseBLIF(strings.NewReader(src))
		if err != nil {
			return nil, fmt.Errorf("mcnc: embedded %s: %w", name, err)
		}
		return mapper.Map(nw, lib)
	}
	e, ok := Find(name)
	if !ok {
		return nil, fmt.Errorf("mcnc: unknown benchmark %q", name)
	}
	return Synthetic(e.Name, e.Gates, seedFor(e.Name), lib)
}

// EmbeddedNames lists the hand-written classic netlists.
func EmbeddedNames() []string {
	return []string{
		"c17", "rca4", "rca8", "dec24", "mux41", "par8", "maj3", "cmp4",
		"mul2", "csel4", "bcd7seg",
	}
}

// EmbeddedSource returns the raw BLIF text of an embedded classic.
func EmbeddedSource(name string) (string, bool) {
	src, ok := embedded[name]
	return src, ok
}

func seedFor(name string) int64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	return int64(h.Sum64())
}

// Synthetic generates a deterministic pseudo-random combinational circuit
// with exactly the given number of gates, mapped onto lib. The same
// (name, gates, seed) triple always yields the same circuit.
func Synthetic(name string, gates int, seed int64, lib *library.Library) (*circuit.Circuit, error) {
	if gates < 1 {
		return nil, fmt.Errorf("mcnc: gate count %d must be positive", gates)
	}
	rng := rand.New(rand.NewSource(seed))
	c := &circuit.Circuit{Name: name}
	nPI := gates / 6
	if nPI < 4 {
		nPI = 4
	}
	if nPI > 48 {
		nPI = 48
	}
	var nets []string
	for i := 0; i < nPI; i++ {
		n := fmt.Sprintf("pi%d", i)
		c.Inputs = append(c.Inputs, n)
		nets = append(nets, n)
	}
	// Weighted cell mix: mostly simple gates, a healthy share of complex
	// AOI/OAI gates so reordering has stacks to work with.
	type weighted struct {
		cell   string
		weight int
	}
	mix := []weighted{
		{"inv", 10}, {"nand2", 18}, {"nor2", 14}, {"nand3", 10},
		{"nor3", 7}, {"nand4", 3}, {"nor4", 3},
		{"aoi21", 9}, {"oai21", 9}, {"aoi22", 4}, {"oai22", 4},
		{"aoi211", 3}, {"oai211", 3}, {"aoi31", 2}, {"oai31", 2},
		{"aoi221", 2}, {"oai221", 2}, {"aoi222", 1}, {"oai222", 1},
	}
	total := 0
	for _, w := range mix {
		total += w.weight
	}
	pickCell := func() *library.Cell {
		r := rng.Intn(total)
		for _, w := range mix {
			r -= w.weight
			if r < 0 {
				return lib.MustCell(w.cell)
			}
		}
		return lib.MustCell("nand2")
	}
	// pickNet biases towards recently created nets to build depth while
	// keeping reconvergence (shared fan-out) likely.
	pickNet := func(exclude map[string]bool) string {
		for {
			var n string
			if rng.Float64() < 0.6 && len(nets) > nPI {
				lo := len(nets) - len(nets)/3 - 1
				n = nets[lo+rng.Intn(len(nets)-lo)]
			} else {
				n = nets[rng.Intn(len(nets))]
			}
			if !exclude[n] {
				return n
			}
		}
	}
	used := map[string]bool{}
	for i := 0; i < gates; i++ {
		cell := pickCell()
		for len(nets) < len(cell.Inputs) {
			// Degenerate tiny case: add extra inputs.
			n := fmt.Sprintf("pi%d", len(c.Inputs))
			c.Inputs = append(c.Inputs, n)
			nets = append(nets, n)
		}
		exclude := map[string]bool{}
		pins := make([]string, len(cell.Inputs))
		for p := range pins {
			pins[p] = pickNet(exclude)
			exclude[pins[p]] = true
			used[pins[p]] = true
		}
		out := fmt.Sprintf("n%d", i)
		c.Gates = append(c.Gates, &circuit.Instance{
			Name: fmt.Sprintf("g%d", i),
			Cell: cell.Proto,
			Pins: pins,
			Out:  out,
		})
		nets = append(nets, out)
	}
	// Outputs: every gate output that nothing reads. Guarantee ≥ 1.
	for _, g := range c.Gates {
		if !used[g.Out] {
			c.Outputs = append(c.Outputs, g.Out)
		}
	}
	if len(c.Outputs) == 0 {
		c.Outputs = append(c.Outputs, c.Gates[len(c.Gates)-1].Out)
	}
	if err := c.Validate(); err != nil {
		return nil, fmt.Errorf("mcnc: synthetic %s: %w", name, err)
	}
	return c, nil
}

// RippleCarryAdderBLIF emits the BLIF text of an n-bit ripple-carry adder
// built from full-adder SOP nodes — the Section 1.1 motivation circuit,
// whose carry chain accumulates transition density towards the most
// significant bits.
func RippleCarryAdderBLIF(bits int) string {
	var b strings.Builder
	fmt.Fprintf(&b, ".model rca%d\n", bits)
	b.WriteString(".inputs")
	for i := 0; i < bits; i++ {
		fmt.Fprintf(&b, " a%d b%d", i, i)
	}
	b.WriteString(" cin\n.outputs")
	for i := 0; i < bits; i++ {
		fmt.Fprintf(&b, " s%d", i)
	}
	b.WriteString(" cout\n")
	carry := "cin"
	for i := 0; i < bits; i++ {
		next := fmt.Sprintf("c%d", i+1)
		if i == bits-1 {
			next = "cout"
		}
		fmt.Fprintf(&b, ".names a%d b%d %s s%d\n100 1\n010 1\n001 1\n111 1\n", i, i, carry, i)
		fmt.Fprintf(&b, ".names a%d b%d %s %s\n11- 1\n1-1 1\n-11 1\n", i, i, carry, next)
		carry = next
	}
	b.WriteString(".end\n")
	return b.String()
}

// embedded holds the hand-written classic netlists.
var embedded = map[string]string{
	"rca4": RippleCarryAdderBLIF(4),
	"rca8": RippleCarryAdderBLIF(8),

	// The ISCAS-85 c17 netlist: six 2-input NANDs.
	"c17": `.model c17
.inputs i1 i2 i3 i6 i7
.outputs o22 o23
.names i1 i3 n10
11 0
.names i3 i6 n11
11 0
.names i2 n11 n16
11 0
.names n11 i7 n19
11 0
.names n10 n16 o22
11 0
.names n16 n19 o23
11 0
.end
`,

	// 2-to-4 decoder with enable.
	"dec24": `.model dec24
.inputs en a b
.outputs d0 d1 d2 d3
.names en a b d0
100 1
.names en a b d1
110 1
.names en a b d2
101 1
.names en a b d3
111 1
.end
`,

	// 4-to-1 multiplexer.
	"mux41": `.model mux41
.inputs s1 s0 d0 d1 d2 d3
.outputs z
.names s1 s0 d0 d1 d2 d3 z
001--- 1
01-1-- 1
10--1- 1
11---1 1
.end
`,

	// 8-input parity as a balanced XOR tree.
	"par8": `.model par8
.inputs x0 x1 x2 x3 x4 x5 x6 x7
.outputs p
.names x0 x1 t0
10 1
01 1
.names x2 x3 t1
10 1
01 1
.names x4 x5 t2
10 1
01 1
.names x6 x7 t3
10 1
01 1
.names t0 t1 u0
10 1
01 1
.names t2 t3 u1
10 1
01 1
.names u0 u1 p
10 1
01 1
.end
`,

	// 3-input majority voter.
	"maj3": `.model maj3
.inputs a b c
.outputs m
.names a b c m
11- 1
1-1 1
-11 1
.end
`,

	// 2×2-bit array multiplier: p = a·b, a = a1a0, b = b1b0.
	"mul2": `.model mul2
.inputs a0 a1 b0 b1
.outputs p0 p1 p2 p3
.names a0 b0 p0
11 1
.names a1 b0 m10
11 1
.names a0 b1 m01
11 1
.names a1 b1 m11
11 1
.names m10 m01 p1
10 1
01 1
.names m10 m01 c1
11 1
.names m11 c1 p2
10 1
01 1
.names m11 c1 p3
11 1
.end
`,

	// 4-bit carry-select adder: low half computed once, high half computed
	// for both carry assumptions and selected — a classic structure with
	// heavy reconvergence.
	"csel4": `.model csel4
.inputs a0 b0 a1 b1 a2 b2 a3 b3 cin
.outputs s0 s1 s2 s3 cout
.names a0 b0 cin s0
100 1
010 1
001 1
111 1
.names a0 b0 cin c1
11- 1
1-1 1
-11 1
.names a1 b1 c1 s1
100 1
010 1
001 1
111 1
.names a1 b1 c1 csel
11- 1
1-1 1
-11 1
.names a2 b2 s2z
10 1
01 1
.names a2 b2 c3z
11 1
.names a2 b2 s2o
11 1
00 1
.names a2 b2 c3o
1- 1
-1 1
.names csel s2z s2o s2
01- 1
1-1 1
.names csel c3z c3o c3
01- 1
1-1 1
.names a3 b3 c3 s3
100 1
010 1
001 1
111 1
.names a3 b3 c3 cout
11- 1
1-1 1
-11 1
.end
`,

	// BCD to seven-segment decoder (segments a-g, inputs d3..d0; values
	// 10-15 treated as don't-make-sense → blank).
	"bcd7seg": `.model bcd7seg
.inputs d3 d2 d1 d0
.outputs sa sb sc sd se sf sg
.names d3 d2 d1 d0 sa
0000 1
0010 1
0011 1
0101 1
0110 1
0111 1
1000 1
1001 1
.names d3 d2 d1 d0 sb
0000 1
0001 1
0010 1
0011 1
0100 1
0111 1
1000 1
1001 1
.names d3 d2 d1 d0 sc
0000 1
0001 1
0011 1
0100 1
0101 1
0110 1
0111 1
1000 1
1001 1
.names d3 d2 d1 d0 sd
0000 1
0010 1
0011 1
0101 1
0110 1
1000 1
1001 1
.names d3 d2 d1 d0 se
0000 1
0010 1
0110 1
1000 1
.names d3 d2 d1 d0 sf
0000 1
0100 1
0101 1
0110 1
1000 1
1001 1
.names d3 d2 d1 d0 sg
0010 1
0011 1
0100 1
0101 1
0110 1
1000 1
1001 1
.end
`,

	// 4-bit equality comparator.
	"cmp4": `.model cmp4
.inputs a0 b0 a1 b1 a2 b2 a3 b3
.outputs eq
.names a0 b0 x0
11 1
00 1
.names a1 b1 x1
11 1
00 1
.names a2 b2 x2
11 1
00 1
.names a3 b3 x3
11 1
00 1
.names x0 x1 x2 x3 eq
1111 1
.end
`,
}
