package circuit

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/logic"
)

func TestNetFunctionsXor(t *testing.T) {
	c := xorNand()
	fns, err := NetFunctions(c)
	if err != nil {
		t.Fatal(err)
	}
	want := logic.MustParseExpr("x !y + !x y", []string{"x", "y"})
	if !fns["z"].Equal(want) {
		t.Fatalf("composed z = %v, want xor", fns["z"])
	}
	// Inputs are projections.
	if !fns["x"].Equal(logic.Var(0, 2)) {
		t.Error("input function wrong")
	}
}

func TestEquivalentSelf(t *testing.T) {
	c := xorNand()
	ok, witness, err := Equivalent(c, c.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("clone not equivalent: %s", witness)
	}
}

func TestEquivalentDetectsDifference(t *testing.T) {
	a := xorNand()
	b := a.Clone()
	// Swap one gate's pins so b computes a different function:
	// g2 computes nand(x,t); change it to nand(y,t).
	b.Gates[1].Pins[0] = "y"
	ok, witness, err := Equivalent(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("different circuits reported equivalent")
	}
	if !strings.Contains(witness, "output z") {
		t.Errorf("witness %q does not name the output", witness)
	}
	if !strings.Contains(witness, "minterm") {
		t.Errorf("witness %q lacks a counterexample", witness)
	}
}

func TestEquivalentInputOrderIndependent(t *testing.T) {
	a := xorNand()
	b := a.Clone()
	b.Inputs = []string{"y", "x"} // same set, different order
	ok, witness, err := Equivalent(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("input reordering broke equivalence: %s", witness)
	}
}

func TestEquivalentRejectsDifferentInterfaces(t *testing.T) {
	a := xorNand()
	b := a.Clone()
	b.Inputs = []string{"x", "w"}
	if _, _, err := Equivalent(a, b); err == nil {
		t.Error("different input sets accepted")
	}
	c := a.Clone()
	c.Outputs = []string{"t"}
	if _, _, err := Equivalent(a, c); err == nil {
		t.Error("different output sets accepted")
	}
}

func TestEquivalentRandomAgrees(t *testing.T) {
	a := xorNand()
	b := a.Clone()
	rng := rand.New(rand.NewSource(3))
	ok, _, err := EquivalentRandom(a, b, 64, rng)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("clone failed random equivalence")
	}
	b.Gates[1].Pins[0] = "y"
	ok, witness, err := EquivalentRandom(a, b, 256, rng)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("mutated circuit passed random equivalence")
	}
	if witness == "" {
		t.Error("no witness reported")
	}
}

func TestNetFunctionsTooWide(t *testing.T) {
	c := &Circuit{Name: "wide", Outputs: []string{"z"}}
	for i := 0; i < logic.MaxVars+1; i++ {
		c.Inputs = append(c.Inputs, nets(i))
	}
	c.Gates = []*Instance{{Name: "g", Cell: cellNand2(), Pins: []string{nets(0), nets(1)}, Out: "z"}}
	if _, err := NetFunctions(c); err == nil {
		t.Error("over-wide circuit accepted for exact composition")
	}
}

func nets(i int) string {
	return "w" + string(rune('a'+i%26)) + string(rune('0'+i/26))
}
