// Package circuit provides the gate-level intermediate representation the
// optimizer traverses: named nets, primary inputs and outputs, and gate
// instances bound to transistor-level cell configurations. It implements
// the depth-first (topological) traversal of the paper's Figure 3 and the
// propagation of equilibrium probabilities and transition densities from
// the primary inputs to every net.
package circuit

import (
	"fmt"
	"sort"

	"repro/internal/gate"
	"repro/internal/stoch"
)

// Instance is one gate of the circuit: a cell configuration plus the nets
// bound to its pins.
type Instance struct {
	Name string     // instance name, unique within the circuit
	Cell *gate.Gate // transistor-level configuration (ordered networks)
	Pins []string   // driving net per cell input, parallel to Cell.Inputs
	Out  string     // net driven by the gate output
}

// Circuit is a combinational gate-level netlist.
type Circuit struct {
	Name    string
	Inputs  []string // primary input nets
	Outputs []string // primary output nets
	Gates   []*Instance
}

// Clone returns a deep copy; cell configurations are shared (they are
// immutable) but instances and slices are fresh.
func (c *Circuit) Clone() *Circuit {
	n := &Circuit{
		Name:    c.Name,
		Inputs:  append([]string(nil), c.Inputs...),
		Outputs: append([]string(nil), c.Outputs...),
		Gates:   make([]*Instance, len(c.Gates)),
	}
	for i, g := range c.Gates {
		n.Gates[i] = &Instance{
			Name: g.Name,
			Cell: g.Cell,
			Pins: append([]string(nil), g.Pins...),
			Out:  g.Out,
		}
	}
	return n
}

// Driver returns, for every net, the instance driving it (nil for primary
// inputs).
func (c *Circuit) Driver() map[string]*Instance {
	d := make(map[string]*Instance, len(c.Gates))
	for _, g := range c.Gates {
		d[g.Out] = g
	}
	return d
}

// Fanout returns, for every net, the number of gate input pins it feeds.
// Primary outputs add one additional load each (the environment).
func (c *Circuit) Fanout() map[string]int {
	f := make(map[string]int)
	for _, g := range c.Gates {
		for _, p := range g.Pins {
			f[p]++
		}
	}
	for _, o := range c.Outputs {
		f[o]++
	}
	return f
}

// Validate checks structural sanity: unique instance names, every net
// driven exactly once (by a primary input or one gate), every pin
// connected to a driven net, pin counts matching the cells, outputs
// driven, and no combinational cycles.
func (c *Circuit) Validate() error {
	driven := map[string]string{} // net → "input" or instance name
	for _, in := range c.Inputs {
		if in == "" {
			return fmt.Errorf("circuit %s: empty primary input name", c.Name)
		}
		if _, dup := driven[in]; dup {
			return fmt.Errorf("circuit %s: duplicate primary input %q", c.Name, in)
		}
		driven[in] = "input"
	}
	names := map[string]bool{}
	for _, g := range c.Gates {
		if g.Name == "" {
			return fmt.Errorf("circuit %s: instance with empty name", c.Name)
		}
		if names[g.Name] {
			return fmt.Errorf("circuit %s: duplicate instance name %q", c.Name, g.Name)
		}
		names[g.Name] = true
		if g.Cell == nil {
			return fmt.Errorf("circuit %s: instance %s has no cell", c.Name, g.Name)
		}
		if len(g.Pins) != len(g.Cell.Inputs) {
			return fmt.Errorf("circuit %s: instance %s has %d pins, cell %s wants %d",
				c.Name, g.Name, len(g.Pins), g.Cell.Name, len(g.Cell.Inputs))
		}
		if g.Out == "" {
			return fmt.Errorf("circuit %s: instance %s drives no net", c.Name, g.Name)
		}
		if by, dup := driven[g.Out]; dup {
			return fmt.Errorf("circuit %s: net %q driven by both %s and %s", c.Name, g.Out, by, g.Name)
		}
		driven[g.Out] = g.Name
	}
	for _, g := range c.Gates {
		for i, p := range g.Pins {
			if _, ok := driven[p]; !ok {
				return fmt.Errorf("circuit %s: instance %s pin %d reads undriven net %q", c.Name, g.Name, i, p)
			}
		}
	}
	for _, o := range c.Outputs {
		if _, ok := driven[o]; !ok {
			return fmt.Errorf("circuit %s: primary output %q undriven", c.Name, o)
		}
	}
	if _, err := c.TopoOrder(); err != nil {
		return err
	}
	return nil
}

// TopoOrder returns the gates ordered so that every gate appears after all
// gates in its transitive fan-in — the traversal order of Figure 3. It
// reports an error on combinational cycles.
func (c *Circuit) TopoOrder() ([]*Instance, error) {
	driver := c.Driver()
	const (
		unvisited = 0
		visiting  = 1
		done      = 2
	)
	state := make(map[*Instance]int, len(c.Gates))
	var order []*Instance
	var visit func(g *Instance) error
	visit = func(g *Instance) error {
		switch state[g] {
		case done:
			return nil
		case visiting:
			return fmt.Errorf("circuit %s: combinational cycle through %s", c.Name, g.Name)
		}
		state[g] = visiting
		for _, p := range g.Pins {
			if d := driver[p]; d != nil {
				if err := visit(d); err != nil {
					return err
				}
			}
		}
		state[g] = done
		order = append(order, g)
		return nil
	}
	for _, g := range c.Gates {
		if err := visit(g); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// Nets returns every net name, sorted: inputs first, then gate outputs.
func (c *Circuit) Nets() []string {
	seen := map[string]bool{}
	var nets []string
	add := func(n string) {
		if !seen[n] {
			seen[n] = true
			nets = append(nets, n)
		}
	}
	for _, in := range c.Inputs {
		add(in)
	}
	var outs []string
	for _, g := range c.Gates {
		outs = append(outs, g.Out)
	}
	sort.Strings(outs)
	for _, o := range outs {
		add(o)
	}
	return nets
}

// Stats summarizes the circuit for reports.
type Stats struct {
	Gates       int
	Transistors int
	ByCell      map[string]int
	Depth       int // logic depth in gate levels
}

// Stats computes summary statistics.
func (c *Circuit) Stats() (Stats, error) {
	s := Stats{Gates: len(c.Gates), ByCell: map[string]int{}}
	for _, g := range c.Gates {
		s.ByCell[g.Cell.Name]++
		s.Transistors += g.Cell.NumTransistors()
	}
	order, err := c.TopoOrder()
	if err != nil {
		return Stats{}, err
	}
	level := map[string]int{}
	for _, g := range order {
		max := 0
		for _, p := range g.Pins {
			if level[p] > max {
				max = level[p]
			}
		}
		level[g.Out] = max + 1
		if level[g.Out] > s.Depth {
			s.Depth = level[g.Out]
		}
	}
	return s, nil
}

// Eval computes the steady-state value of every net for the given primary
// input assignment (zero-delay functional simulation). Used for
// equivalence checking between original and reordered circuits.
func (c *Circuit) Eval(inputs map[string]bool) (map[string]bool, error) {
	order, err := c.TopoOrder()
	if err != nil {
		return nil, err
	}
	val := make(map[string]bool, len(inputs)+len(c.Gates))
	for _, in := range c.Inputs {
		v, ok := inputs[in]
		if !ok {
			return nil, fmt.Errorf("circuit %s: missing value for input %q", c.Name, in)
		}
		val[in] = v
	}
	for _, g := range order {
		f, err := g.Cell.Func()
		if err != nil {
			return nil, err
		}
		var m uint
		for i, p := range g.Pins {
			if val[p] {
				m |= 1 << i
			}
		}
		val[g.Out] = f.Eval(m)
	}
	return val, nil
}

// Propagate computes per-net signal statistics from primary-input
// statistics, calling eval for each gate in topological order — the
// OBTAIN_PROBABILITIES / UPDATE_CIRCUIT_INFORMATION loop of Figure 3.
// The eval callback receives the gate and its input statistics in pin
// order and returns the output statistics.
func (c *Circuit) Propagate(pi map[string]stoch.Signal,
	eval func(g *Instance, in []stoch.Signal) (stoch.Signal, error)) (map[string]stoch.Signal, error) {
	order, err := c.TopoOrder()
	if err != nil {
		return nil, err
	}
	stats := make(map[string]stoch.Signal, len(pi)+len(c.Gates))
	for _, in := range c.Inputs {
		s, ok := pi[in]
		if !ok {
			return nil, fmt.Errorf("circuit %s: missing statistics for input %q", c.Name, in)
		}
		if err := s.Validate(); err != nil {
			return nil, fmt.Errorf("circuit %s: input %q: %w", c.Name, in, err)
		}
		stats[in] = s
	}
	for _, g := range order {
		in := make([]stoch.Signal, len(g.Pins))
		for i, p := range g.Pins {
			s, ok := stats[p]
			if !ok {
				return nil, fmt.Errorf("circuit %s: instance %s reads unannotated net %q", c.Name, g.Name, p)
			}
			in[i] = s
		}
		out, err := eval(g, in)
		if err != nil {
			return nil, fmt.Errorf("circuit %s: instance %s: %w", c.Name, g.Name, err)
		}
		stats[g.Out] = out
	}
	return stats, nil
}
