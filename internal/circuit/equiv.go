package circuit

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/logic"
)

// NetFunctions composes every net's boolean function over the primary
// input space (input i of the returned functions is c.Inputs[i]). It is
// exact and exhaustive, so the circuit must have at most logic.MaxVars
// primary inputs.
func NetFunctions(c *Circuit) (map[string]logic.Func, error) {
	n := len(c.Inputs)
	if n > logic.MaxVars {
		return nil, fmt.Errorf("circuit %s: %d primary inputs exceed the exact-composition limit %d",
			c.Name, n, logic.MaxVars)
	}
	order, err := c.TopoOrder()
	if err != nil {
		return nil, err
	}
	fns := make(map[string]logic.Func, n+len(c.Gates))
	for i, in := range c.Inputs {
		fns[in] = logic.Var(i, n)
	}
	for _, g := range order {
		cell, err := g.Cell.Func()
		if err != nil {
			return nil, err
		}
		pinFns := make([]logic.Func, len(g.Pins))
		for i, p := range g.Pins {
			f, ok := fns[p]
			if !ok {
				return nil, fmt.Errorf("circuit %s: instance %s reads unknown net %q", c.Name, g.Name, p)
			}
			pinFns[i] = f
		}
		fns[g.Out] = compose(cell, pinFns, n)
	}
	return fns, nil
}

// compose evaluates cell(f_1, …, f_k) over the n-variable PI space.
func compose(cell logic.Func, pins []logic.Func, n int) logic.Func {
	out := logic.Const(n, false)
	size := uint(1) << n
	for m := uint(0); m < size; m++ {
		var pinBits uint
		for i, f := range pins {
			if f.Eval(m) {
				pinBits |= 1 << i
			}
		}
		if cell.Eval(pinBits) {
			out = out.Or(mintermOf(m, n))
		}
	}
	return out
}

func mintermOf(m uint, n int) logic.Func {
	t := logic.Const(n, true)
	for i := 0; i < n; i++ {
		v := logic.Var(i, n)
		if m>>i&1 == 0 {
			v = v.Not()
		}
		t = t.And(v)
	}
	return t
}

// Equivalent formally compares two circuits output by output, composing
// each primary output's function over the shared primary-input space.
// The circuits must agree on input and output names (order may differ).
// On mismatch it returns false with a human-readable witness.
func Equivalent(a, b *Circuit) (bool, string, error) {
	if err := sameNames("input", a.Inputs, b.Inputs); err != nil {
		return false, "", err
	}
	if err := sameNames("output", a.Outputs, b.Outputs); err != nil {
		return false, "", err
	}
	// Align b's input order with a's by building b's functions over its
	// own order and permuting.
	fa, err := NetFunctions(a)
	if err != nil {
		return false, "", err
	}
	fb, err := NetFunctions(b)
	if err != nil {
		return false, "", err
	}
	n := len(a.Inputs)
	perm := make([]int, n) // b-input index → a-input index
	posA := map[string]int{}
	for i, in := range a.Inputs {
		posA[in] = i
	}
	for i, in := range b.Inputs {
		perm[i] = posA[in]
	}
	for _, o := range a.Outputs {
		ga := fa[o]
		gb := fb[o].PermuteVars(perm)
		if !ga.Equal(gb) {
			// Find a concrete counterexample minterm.
			for m := uint(0); m < 1<<n; m++ {
				if ga.Eval(m) != gb.Eval(m) {
					return false, fmt.Sprintf("output %s differs at input minterm %d (%s)",
						o, m, mintermAssignment(a.Inputs, m)), nil
				}
			}
			return false, fmt.Sprintf("output %s differs", o), nil
		}
	}
	return true, "", nil
}

func mintermAssignment(inputs []string, m uint) string {
	out := ""
	for i, in := range inputs {
		if i > 0 {
			out += " "
		}
		v := "0"
		if m>>i&1 == 1 {
			v = "1"
		}
		out += in + "=" + v
	}
	return out
}

func sameNames(kind string, a, b []string) error {
	if len(a) != len(b) {
		return fmt.Errorf("circuit: %s counts differ: %d vs %d", kind, len(a), len(b))
	}
	sa := append([]string(nil), a...)
	sb := append([]string(nil), b...)
	sort.Strings(sa)
	sort.Strings(sb)
	for i := range sa {
		if sa[i] != sb[i] {
			return fmt.Errorf("circuit: %s sets differ: %q vs %q", kind, sa[i], sb[i])
		}
	}
	return nil
}

// EquivalentRandom compares two circuits on random input vectors — the
// fallback for circuits too wide for exact composition. It reports the
// first mismatch found; passing proves nothing but catches gross errors.
func EquivalentRandom(a, b *Circuit, trials int, rng *rand.Rand) (bool, string, error) {
	if err := sameNames("input", a.Inputs, b.Inputs); err != nil {
		return false, "", err
	}
	if err := sameNames("output", a.Outputs, b.Outputs); err != nil {
		return false, "", err
	}
	for trial := 0; trial < trials; trial++ {
		in := make(map[string]bool, len(a.Inputs))
		for _, name := range a.Inputs {
			in[name] = rng.Intn(2) == 1
		}
		va, err := a.Eval(in)
		if err != nil {
			return false, "", err
		}
		vb, err := b.Eval(in)
		if err != nil {
			return false, "", err
		}
		for _, o := range a.Outputs {
			if va[o] != vb[o] {
				return false, fmt.Sprintf("output %s differs on a random vector (trial %d)", o, trial), nil
			}
		}
	}
	return true, "", nil
}
