package circuit

import (
	"math"
	"strings"
	"testing"

	"repro/internal/gate"
	"repro/internal/sp"
	"repro/internal/stoch"
)

func cellInv() *gate.Gate {
	return gate.MustNew("inv", []string{"a"}, sp.MustParse("a"))
}

func cellNand2() *gate.Gate {
	return gate.MustNew("nand2", []string{"a", "b"}, sp.MustParse("s(a,b)"))
}

// xorNand builds x ⊕ y out of four NAND2 gates — a classic that checks
// multi-level propagation and reconvergent fanout.
func xorNand() *Circuit {
	n := cellNand2()
	return &Circuit{
		Name:    "xor",
		Inputs:  []string{"x", "y"},
		Outputs: []string{"z"},
		Gates: []*Instance{
			{Name: "g1", Cell: n, Pins: []string{"x", "y"}, Out: "t"},
			{Name: "g2", Cell: n, Pins: []string{"x", "t"}, Out: "u"},
			{Name: "g3", Cell: n, Pins: []string{"t", "y"}, Out: "v"},
			{Name: "g4", Cell: n, Pins: []string{"u", "v"}, Out: "z"},
		},
	}
}

func TestValidateAcceptsXor(t *testing.T) {
	if err := xorNand().Validate(); err != nil {
		t.Fatalf("valid circuit rejected: %v", err)
	}
}

func TestValidateRejects(t *testing.T) {
	base := xorNand()
	mutate := []struct {
		name string
		f    func(c *Circuit)
		want string
	}{
		{"dup instance", func(c *Circuit) { c.Gates[1].Name = "g1" }, "duplicate instance"},
		{"double driver", func(c *Circuit) { c.Gates[1].Out = "t" }, "driven by both"},
		{"undriven pin", func(c *Circuit) { c.Gates[0].Pins[0] = "ghost" }, "undriven net"},
		{"undriven output", func(c *Circuit) { c.Outputs = []string{"nope"} }, "undriven"},
		{"pin count", func(c *Circuit) { c.Gates[0].Pins = []string{"x"} }, "pins"},
		{"dup input", func(c *Circuit) { c.Inputs = []string{"x", "x"} }, "duplicate primary input"},
		{"no cell", func(c *Circuit) { c.Gates[0].Cell = nil }, "no cell"},
		{"empty out", func(c *Circuit) { c.Gates[0].Out = "" }, "drives no net"},
	}
	for _, m := range mutate {
		c := base.Clone()
		m.f(c)
		err := c.Validate()
		if err == nil {
			t.Errorf("%s: accepted", m.name)
			continue
		}
		if !strings.Contains(err.Error(), m.want) {
			t.Errorf("%s: error %q does not mention %q", m.name, err, m.want)
		}
	}
}

func TestValidateRejectsCycle(t *testing.T) {
	n := cellNand2()
	c := &Circuit{
		Name:    "loop",
		Inputs:  []string{"x"},
		Outputs: []string{"a"},
		Gates: []*Instance{
			{Name: "g1", Cell: n, Pins: []string{"x", "b"}, Out: "a"},
			{Name: "g2", Cell: n, Pins: []string{"x", "a"}, Out: "b"},
		},
	}
	err := c.Validate()
	if err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("cycle not detected: %v", err)
	}
}

func TestTopoOrder(t *testing.T) {
	c := xorNand()
	order, err := c.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	pos := map[string]int{}
	for i, g := range order {
		pos[g.Name] = i
	}
	driver := c.Driver()
	for _, g := range c.Gates {
		for _, p := range g.Pins {
			if d := driver[p]; d != nil && pos[d.Name] > pos[g.Name] {
				t.Errorf("gate %s appears before its fan-in %s", g.Name, d.Name)
			}
		}
	}
}

func TestEvalXor(t *testing.T) {
	c := xorNand()
	for _, tc := range []struct{ x, y, want bool }{
		{false, false, false},
		{false, true, true},
		{true, false, true},
		{true, true, false},
	} {
		val, err := c.Eval(map[string]bool{"x": tc.x, "y": tc.y})
		if err != nil {
			t.Fatal(err)
		}
		if val["z"] != tc.want {
			t.Errorf("xor(%v,%v) = %v, want %v", tc.x, tc.y, val["z"], tc.want)
		}
	}
}

func TestEvalMissingInput(t *testing.T) {
	if _, err := xorNand().Eval(map[string]bool{"x": true}); err == nil {
		t.Error("missing input accepted")
	}
}

func TestFanout(t *testing.T) {
	c := xorNand()
	f := c.Fanout()
	if f["x"] != 2 {
		t.Errorf("fanout(x) = %d, want 2", f["x"])
	}
	if f["t"] != 2 {
		t.Errorf("fanout(t) = %d, want 2", f["t"])
	}
	// Primary output carries one environment load.
	if f["z"] != 1 {
		t.Errorf("fanout(z) = %d, want 1", f["z"])
	}
}

func TestStats(t *testing.T) {
	c := xorNand()
	s, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if s.Gates != 4 {
		t.Errorf("Gates = %d, want 4", s.Gates)
	}
	if s.ByCell["nand2"] != 4 {
		t.Errorf("ByCell[nand2] = %d, want 4", s.ByCell["nand2"])
	}
	if s.Transistors != 16 {
		t.Errorf("Transistors = %d, want 16", s.Transistors)
	}
	if s.Depth != 3 {
		t.Errorf("Depth = %d, want 3", s.Depth)
	}
}

func TestCloneIndependence(t *testing.T) {
	c := xorNand()
	d := c.Clone()
	d.Gates[0].Pins[0] = "other"
	d.Inputs[0] = "w"
	if c.Gates[0].Pins[0] != "x" || c.Inputs[0] != "x" {
		t.Error("Clone shares mutable state")
	}
}

func TestPropagateChainsDensities(t *testing.T) {
	// Two inverters in series with a hand-checkable evaluator: an inverter
	// passes D through and complements P.
	invCell := cellInv()
	c := &Circuit{
		Name:    "buf",
		Inputs:  []string{"a"},
		Outputs: []string{"z"},
		Gates: []*Instance{
			{Name: "i1", Cell: invCell, Pins: []string{"a"}, Out: "m"},
			{Name: "i2", Cell: invCell, Pins: []string{"m"}, Out: "z"},
		},
	}
	stats, err := c.Propagate(map[string]stoch.Signal{"a": {P: 0.2, D: 5e4}},
		func(g *Instance, in []stoch.Signal) (stoch.Signal, error) {
			return stoch.Signal{P: 1 - in[0].P, D: in[0].D}, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(stats["m"].P-0.8) > 1e-12 || math.Abs(stats["z"].P-0.2) > 1e-12 {
		t.Errorf("propagated P wrong: m=%v z=%v", stats["m"], stats["z"])
	}
	if stats["z"].D != 5e4 {
		t.Errorf("propagated D wrong: %v", stats["z"].D)
	}
}

func TestPropagateMissingInputStats(t *testing.T) {
	c := xorNand()
	_, err := c.Propagate(map[string]stoch.Signal{"x": {P: 0.5, D: 1}},
		func(g *Instance, in []stoch.Signal) (stoch.Signal, error) {
			return stoch.Signal{P: 0.5, D: 1}, nil
		})
	if err == nil {
		t.Error("missing input statistics accepted")
	}
}

func TestPropagateInvalidInputStats(t *testing.T) {
	c := xorNand()
	_, err := c.Propagate(map[string]stoch.Signal{"x": {P: 5, D: 1}, "y": {P: 0.5, D: 1}},
		func(g *Instance, in []stoch.Signal) (stoch.Signal, error) {
			return stoch.Signal{P: 0.5, D: 1}, nil
		})
	if err == nil {
		t.Error("invalid input statistics accepted")
	}
}

func TestNetsOrdering(t *testing.T) {
	c := xorNand()
	nets := c.Nets()
	if len(nets) != 6 {
		t.Fatalf("Nets = %v, want 6 nets", nets)
	}
	if nets[0] != "x" || nets[1] != "y" {
		t.Errorf("inputs not first: %v", nets)
	}
}
