package mapper

import (
	"strings"
	"testing"

	"repro/internal/circuit"
	"repro/internal/library"
	"repro/internal/logic"
	"repro/internal/netlist"
)

func mustParse(t *testing.T, src string) *netlist.Network {
	t.Helper()
	nw, err := netlist.ParseBLIF(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	return nw
}

// evalNetwork computes every net of a (SOP-only) network for one input
// assignment — the reference model for equivalence checks.
func evalNetwork(t *testing.T, nw *netlist.Network, in map[string]bool) map[string]bool {
	t.Helper()
	val := map[string]bool{}
	for _, i := range nw.Inputs {
		val[i] = in[i]
	}
	remaining := append([]*netlist.SOPNode(nil), nw.SOPs...)
	for len(remaining) > 0 {
		progressed := false
		var next []*netlist.SOPNode
		for _, n := range remaining {
			ready := true
			for _, i := range n.Inputs {
				if _, ok := val[i]; !ok {
					ready = false
					break
				}
			}
			if !ready {
				next = append(next, n)
				continue
			}
			f, err := n.Func()
			if err != nil {
				t.Fatal(err)
			}
			var m uint
			for i, name := range n.Inputs {
				if val[name] {
					m |= 1 << i
				}
			}
			val[n.Output] = f.Eval(m)
			progressed = true
		}
		if !progressed {
			t.Fatal("network evaluation stuck (cycle?)")
		}
		remaining = next
	}
	return val
}

// checkEquivalent exhaustively compares the mapped circuit against the
// source network on all input assignments (inputs must be few).
func checkEquivalent(t *testing.T, nw *netlist.Network, c *circuit.Circuit) {
	t.Helper()
	n := len(nw.Inputs)
	if n > 12 {
		t.Fatalf("too many inputs for exhaustive check: %d", n)
	}
	for m := uint(0); m < 1<<n; m++ {
		in := map[string]bool{}
		for i, name := range nw.Inputs {
			in[name] = m>>i&1 == 1
		}
		want := evalNetwork(t, nw, in)
		got, err := c.Eval(in)
		if err != nil {
			t.Fatal(err)
		}
		for _, o := range nw.Outputs {
			if got[o] != want[o] {
				t.Fatalf("output %s differs at minterm %d: mapped=%v reference=%v", o, m, got[o], want[o])
			}
		}
	}
}

func TestMapFullAdder(t *testing.T) {
	src := `.model fa
.inputs a b cin
.outputs sum cout
.names a b cin sum
100 1
010 1
001 1
111 1
.names a b cin cout
11- 1
1-1 1
-11 1
.end
`
	nw := mustParse(t, src)
	c, err := Map(nw, library.Default())
	if err != nil {
		t.Fatal(err)
	}
	checkEquivalent(t, nw, c)
}

func TestMapDirectCellMatches(t *testing.T) {
	cases := []struct {
		cover    string
		inputs   string
		wantCell string
	}{
		{"11 0", "a b", "nand2"},           // off-set NAND
		{"0- 1\n-0 1", "a b", "nand2"},     // on-set of ¬(ab)
		{"00 1", "a b", "nor2"},            // ¬(a+b)
		{"000 1", "a b c", "nor3"},         // nor3
		{"11- 0\n--1 0", "a b c", "aoi21"}, // ¬(ab+c) via off-set
	}
	for _, tc := range cases {
		src := ".model m\n.inputs " + tc.inputs + "\n.outputs z\n.names " + tc.inputs + " z\n" + tc.cover + "\n.end\n"
		nw := mustParse(t, src)
		c, err := Map(nw, library.Default())
		if err != nil {
			t.Fatalf("%s: %v", tc.wantCell, err)
		}
		if len(c.Gates) != 1 {
			t.Errorf("%s: mapped to %d gates, want 1", tc.wantCell, len(c.Gates))
			continue
		}
		if c.Gates[0].Cell.Name != tc.wantCell {
			t.Errorf("mapped to %s, want %s", c.Gates[0].Cell.Name, tc.wantCell)
		}
		checkEquivalent(t, nw, c)
	}
}

func TestMapComplementMatchAddsInverter(t *testing.T) {
	// z = ab is the complement of nand2: expect nand2 + inv.
	src := ".model m\n.inputs a b\n.outputs z\n.names a b z\n11 1\n.end\n"
	nw := mustParse(t, src)
	c, err := Map(nw, library.Default())
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Gates) != 2 {
		t.Fatalf("AND mapped to %d gates, want 2", len(c.Gates))
	}
	checkEquivalent(t, nw, c)
}

func TestMapIdentityAliasesInternalNet(t *testing.T) {
	// n = a; z = ¬n. The identity node should vanish.
	src := ".model m\n.inputs a\n.outputs z\n.names a n\n1 1\n.names n z\n0 1\n.end\n"
	nw := mustParse(t, src)
	c, err := Map(nw, library.Default())
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Gates) != 1 || c.Gates[0].Cell.Name != "inv" {
		t.Fatalf("got %d gates", len(c.Gates))
	}
	checkEquivalent(t, nw, c)
}

func TestMapIdentityPrimaryOutputBuffers(t *testing.T) {
	// z = a with z a primary output: must materialize a buffer.
	src := ".model m\n.inputs a\n.outputs z\n.names a z\n1 1\n.end\n"
	nw := mustParse(t, src)
	c, err := Map(nw, library.Default())
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Gates) != 2 {
		t.Fatalf("PO buffer uses %d gates, want 2 inverters", len(c.Gates))
	}
	checkEquivalent(t, nw, c)
}

func TestMapConstantFolding(t *testing.T) {
	// k = a·¬a ≡ 0; z = ¬(b + k) should reduce to z = ¬b (one inverter).
	src := `.model m
.inputs a b
.outputs z
.names a k
1 0
0 0
.names b k z
00 1
.end
`
	nw := mustParse(t, src)
	c, err := Map(nw, library.Default())
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Gates) != 1 || c.Gates[0].Cell.Name != "inv" {
		t.Fatalf("constant not folded: %d gates, first %s", len(c.Gates), c.Gates[0].Cell.Name)
	}
	checkEquivalent(t, nw, c)
}

func TestMapConstantOutputRejected(t *testing.T) {
	src := ".model m\n.inputs a\n.outputs z\n.names z\n1\n.end\n"
	nw := mustParse(t, src)
	if _, err := Map(nw, library.Default()); err == nil {
		t.Error("constant primary output accepted")
	}
}

func TestMapWideAnd(t *testing.T) {
	// 6-input AND: needs a NAND tree.
	src := ".model m\n.inputs a b c d e f\n.outputs z\n.names a b c d e f z\n111111 1\n.end\n"
	nw := mustParse(t, src)
	c, err := Map(nw, library.Default())
	if err != nil {
		t.Fatal(err)
	}
	checkEquivalent(t, nw, c)
}

func TestMapXorDecomposition(t *testing.T) {
	src := ".model m\n.inputs a b\n.outputs z\n.names a b z\n10 1\n01 1\n.end\n"
	nw := mustParse(t, src)
	c, err := Map(nw, library.Default())
	if err != nil {
		t.Fatal(err)
	}
	checkEquivalent(t, nw, c)
	// Sanity: xor needs more than one cell.
	if len(c.Gates) < 3 {
		t.Errorf("xor mapped to %d gates, expected a small tree", len(c.Gates))
	}
}

func TestMapSharedInverters(t *testing.T) {
	// Two nodes needing ¬a must share one inverter.
	src := `.model m
.inputs a b c
.outputs y z
.names a b y
01 1
.names a c z
01 1
.end
`
	nw := mustParse(t, src)
	c, err := Map(nw, library.Default())
	if err != nil {
		t.Fatal(err)
	}
	checkEquivalent(t, nw, c)
	invsOfA := 0
	for _, g := range c.Gates {
		if g.Cell.Name == "inv" && g.Pins[0] == "a" {
			invsOfA++
		}
	}
	if invsOfA > 1 {
		t.Errorf("%d inverters of net a instantiated, want a single shared one", invsOfA)
	}
}

func TestMapPassesThroughGateNodes(t *testing.T) {
	src := `.model m
.inputs a b
.outputs z
.gate nand2 y=m a=a b=b
.names m z
0 1
.end
`
	nw := mustParse(t, src)
	c, err := Map(nw, library.Default())
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Gates) != 2 {
		t.Fatalf("gates = %d, want 2", len(c.Gates))
	}
	val, err := c.Eval(map[string]bool{"a": true, "b": true})
	if err != nil {
		t.Fatal(err)
	}
	if val["z"] != true { // z = ¬¬(ab) = ab = 1
		t.Error("pass-through gate wired wrong")
	}
}

func TestMapUnknownGateCell(t *testing.T) {
	src := ".model m\n.inputs a\n.outputs z\n.gate xor2 y=z a=a b=a\n.end\n"
	nw := mustParse(t, src)
	if _, err := Map(nw, library.Default()); err == nil {
		t.Error("unknown cell accepted")
	}
}

func TestMapCycleRejected(t *testing.T) {
	src := ".model m\n.inputs a\n.outputs x\n.names a y x\n11 1\n.names x z\n1 1\n.names z y\n1 1\n.end\n"
	nw := mustParse(t, src)
	if _, err := Map(nw, library.Default()); err == nil {
		t.Error("cyclic network accepted")
	}
}

func TestMinimalCoverCoversExactly(t *testing.T) {
	fns := []logic.Func{
		logic.MustParseExpr("a b + !a c", []string{"a", "b", "c"}),
		logic.MustParseExpr("a !b + !a b", []string{"a", "b"}),
		logic.MustParseExpr("a b c + a b !c + !a", []string{"a", "b", "c"}),
	}
	for _, f := range fns {
		cover := minimalCover(f)
		g, err := logic.FromSOP(f.NumVars(), cover)
		if err != nil {
			t.Fatal(err)
		}
		if !g.Equal(f) {
			t.Errorf("cover %v does not reproduce %v", cover, f)
		}
	}
}

func TestProjectFunc(t *testing.T) {
	// f(a,b,c) = a·c does not depend on b; projection to {0,2} gives xy.
	f := logic.MustParseExpr("a c", []string{"a", "b", "c"})
	p := projectFunc(f, []int{0, 2})
	want := logic.MustParseExpr("x y", []string{"x", "y"})
	if !p.Equal(want) {
		t.Errorf("projectFunc = %v, want %v", p, want)
	}
}

func BenchmarkMapFullAdder(b *testing.B) {
	src := `.model fa
.inputs a b cin
.outputs sum cout
.names a b cin sum
100 1
010 1
001 1
111 1
.names a b cin cout
11- 1
1-1 1
-11 1
.end
`
	nw, err := netlist.ParseBLIF(strings.NewReader(src))
	if err != nil {
		b.Fatal(err)
	}
	lib := library.Default()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Map(nw, lib); err != nil {
			b.Fatal(err)
		}
	}
}
