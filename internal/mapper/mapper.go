// Package mapper lowers a technology-independent logic network (BLIF
// .names nodes) onto the Table 2 cell library, producing the gate-level
// circuits the optimizer works on — the "mapped into the gate library"
// step of the paper's Section 5.1.
//
// The mapping is deliberately simple: each SOP node is matched against the
// library (boolean matching under input permutation, with a free output
// inverter when the complement matches); nodes no cell implements are
// decomposed into NAND/INV trees. Optimal covering is not the point of the
// paper — identical netlists feed both the best- and worst-reordering
// flows, so mapping quality cancels out of the comparison.
package mapper

import (
	"fmt"

	"repro/internal/circuit"
	"repro/internal/library"
	"repro/internal/logic"
	"repro/internal/netlist"
)

// Map lowers the network onto lib.
func Map(nw *netlist.Network, lib *library.Library) (*circuit.Circuit, error) {
	if err := nw.Validate(); err != nil {
		return nil, err
	}
	m := &mapping{
		lib:    lib,
		c:      &circuit.Circuit{Name: nw.Name, Inputs: append([]string(nil), nw.Inputs...)},
		alias:  map[string]string{},
		consts: map[string]bool{},
		pos:    map[string]bool{},
		invOf:  map[string]string{},
	}
	for _, o := range nw.Outputs {
		m.pos[o] = true
	}
	// Pass through pre-mapped gates.
	for _, g := range nw.Gates {
		if err := m.addGateNode(g); err != nil {
			return nil, err
		}
	}
	order, err := topoSOPs(nw)
	if err != nil {
		return nil, err
	}
	for _, n := range order {
		if err := m.mapNode(n); err != nil {
			return nil, err
		}
	}
	m.c.Outputs = make([]string, len(nw.Outputs))
	for i, o := range nw.Outputs {
		if v, isConst := m.consts[m.resolve(o)]; isConst {
			return nil, fmt.Errorf("mapper: primary output %q is the constant %v; the library has no tie cells", o, v)
		}
		m.c.Outputs[i] = o
	}
	if err := m.c.Validate(); err != nil {
		return nil, fmt.Errorf("mapper: produced invalid circuit: %w", err)
	}
	return m.c, nil
}

type mapping struct {
	lib    *library.Library
	c      *circuit.Circuit
	alias  map[string]string // net → equivalent earlier net
	consts map[string]bool   // net → constant value
	pos    map[string]bool   // primary output nets (must stay materialized)
	invOf  map[string]string // net → net carrying its complement (inverter cache)
	nGate  int
	nNet   int
}

func (m *mapping) resolve(net string) string {
	for {
		a, ok := m.alias[net]
		if !ok {
			return net
		}
		net = a
	}
}

func (m *mapping) freshNet() string {
	m.nNet++
	return fmt.Sprintf("_t%d", m.nNet)
}

func (m *mapping) addInstance(cell *library.Cell, pins []string, out string) {
	m.nGate++
	m.c.Gates = append(m.c.Gates, &circuit.Instance{
		Name: fmt.Sprintf("_m%d", m.nGate),
		Cell: cell.Proto,
		Pins: pins,
		Out:  out,
	})
}

// inverted returns a net carrying ¬net, creating (and caching) an inverter
// if needed.
func (m *mapping) inverted(net string) string {
	net = m.resolve(net)
	if inv, ok := m.invOf[net]; ok {
		return inv
	}
	// If net itself is a cached inversion of x, reuse x.
	for x, nx := range m.invOf {
		if nx == net {
			return x
		}
	}
	out := m.freshNet()
	m.addInstance(m.lib.MustCell("inv"), []string{net}, out)
	m.invOf[net] = out
	return out
}

func (m *mapping) addGateNode(g *netlist.GateNode) error {
	cell, ok := m.lib.Cell(g.Cell)
	if !ok {
		return fmt.Errorf("mapper: unknown cell %q", g.Cell)
	}
	pins := make([]string, len(cell.Inputs))
	for i, pin := range cell.Inputs {
		net, ok := g.Pins[pin]
		if !ok {
			return fmt.Errorf("mapper: gate %s missing pin %s", g.Cell, pin)
		}
		pins[i] = net
	}
	if len(g.Pins) != len(cell.Inputs) {
		return fmt.Errorf("mapper: gate %s has %d bindings, cell wants %d", g.Cell, len(g.Pins), len(cell.Inputs))
	}
	m.nGate++
	m.c.Gates = append(m.c.Gates, &circuit.Instance{
		Name: fmt.Sprintf("_m%d", m.nGate),
		Cell: cell.Proto,
		Pins: pins,
		Out:  g.Out,
	})
	return nil
}

func (m *mapping) mapNode(n *netlist.SOPNode) error {
	f, err := n.Func()
	if err != nil {
		return err
	}
	// Substitute known constants and resolve aliases on the node inputs.
	ins := append([]string(nil), n.Inputs...)
	for i := range ins {
		ins[i] = m.resolve(ins[i])
		if v, ok := m.consts[ins[i]]; ok {
			f = f.Cofactor(i, v)
		}
	}
	// Shrink to the true support.
	sup := f.Support()
	rf := projectFunc(f, sup)
	rins := make([]string, len(sup))
	for i, s := range sup {
		rins[i] = ins[s]
	}
	switch len(rins) {
	case 0:
		m.consts[n.Output] = rf.Eval(0)
		if m.pos[n.Output] {
			return fmt.Errorf("mapper: primary output %q is the constant %v; the library has no tie cells", n.Output, rf.Eval(0))
		}
		return nil
	case 1:
		if rf.Equal(logic.Var(0, 1)) {
			return m.emitIdentity(n.Output, rins[0])
		}
		// ¬x: one inverter.
		m.addInstance(m.lib.MustCell("inv"), []string{rins[0]}, n.Output)
		return nil
	}
	// Direct library match.
	if cell, perm, ok := m.lib.Match(rf); ok {
		return m.emitMatch(cell, perm, rins, n.Output)
	}
	// Complement match: realize ¬f with a cell, then invert.
	if cell, perm, ok := m.lib.Match(rf.Not()); ok {
		mid := m.freshNet()
		if err := m.emitMatch(cell, perm, rins, mid); err != nil {
			return err
		}
		m.addInstance(m.lib.MustCell("inv"), []string{mid}, n.Output)
		m.invOf[mid] = n.Output
		return nil
	}
	// Generic two-level decomposition.
	return m.decompose(rf, rins, n.Output)
}

func (m *mapping) emitIdentity(out, in string) error {
	if !m.pos[out] {
		m.alias[out] = in
		return nil
	}
	// A primary output must be a real driven net with its own name:
	// materialize a buffer from two inverters.
	mid := m.inverted(in)
	m.addInstance(m.lib.MustCell("inv"), []string{mid}, out)
	return nil
}

// emitMatch instantiates cell with pins bound per the matcher's binding:
// binding[pin] = index into rins.
func (m *mapping) emitMatch(cell *library.Cell, binding []int, rins []string, out string) error {
	pins := make([]string, len(cell.Inputs))
	for pin, v := range binding {
		pins[pin] = rins[v]
	}
	m.addInstance(cell, pins, out)
	return nil
}

// decompose realizes f (arity ≥ 2, no direct match) as NAND/INV trees from
// its sum-of-products cover: f = NAND(¬p1, ¬p2, …) where ¬pi comes from a
// NAND over the product's literals.
func (m *mapping) decompose(f logic.Func, ins []string, out string) error {
	cubes := minimalCover(f)
	if len(cubes) == 0 {
		return fmt.Errorf("mapper: decompose called on constant function")
	}
	var orTerms []string // nets carrying ¬p_i
	for _, cube := range cubes {
		var lits []string
		for i := 0; i < f.NumVars(); i++ {
			switch cube[i] {
			case '1':
				lits = append(lits, ins[i])
			case '0':
				lits = append(lits, m.inverted(ins[i]))
			}
		}
		if len(lits) == 1 {
			// Single literal product: ¬p = inverted literal.
			orTerms = append(orTerms, m.inverted(lits[0]))
			continue
		}
		orTerms = append(orTerms, m.nandTree(lits, ""))
	}
	if len(orTerms) == 1 {
		// f = p1 = ¬(¬p1): invert into out.
		m.addInstance(m.lib.MustCell("inv"), []string{orTerms[0]}, out)
		return nil
	}
	m.nandTree(orTerms, out)
	return nil
}

// nandTree produces NAND(ins...) into out (or a fresh net when out is
// empty), splitting fan-ins wider than four with AND stages.
func (m *mapping) nandTree(ins []string, out string) string {
	for len(ins) > 4 {
		// Collapse the first four into their AND and recurse.
		nand := m.nandTree(ins[:4], "")
		and := m.inverted(nand)
		ins = append([]string{and}, ins[4:]...)
	}
	if out == "" {
		out = m.freshNet()
	}
	var cell *library.Cell
	switch len(ins) {
	case 2:
		cell = m.lib.MustCell("nand2")
	case 3:
		cell = m.lib.MustCell("nand3")
	case 4:
		cell = m.lib.MustCell("nand4")
	default:
		// len(ins) == 1 cannot happen: callers pass ≥ 2.
		panic(fmt.Sprintf("mapper: nandTree fan-in %d", len(ins)))
	}
	m.addInstance(cell, append([]string(nil), ins...), out)
	return out
}

// projectFunc restricts f to the variables listed in sup, producing a
// function of len(sup) variables (the others are vacuous in f).
func projectFunc(f logic.Func, sup []int) logic.Func {
	r := logic.Const(len(sup), false)
	size := uint(1) << len(sup)
	out := r
	for m := uint(0); m < size; m++ {
		var full uint
		for i, s := range sup {
			if m>>i&1 == 1 {
				full |= 1 << s
			}
		}
		if f.Eval(full) {
			out = out.Or(mintermFunc(m, len(sup)))
		}
	}
	return out
}

func mintermFunc(m uint, n int) logic.Func {
	t := logic.Const(n, true)
	for i := 0; i < n; i++ {
		v := logic.Var(i, n)
		if m>>i&1 == 0 {
			v = v.Not()
		}
		t = t.And(v)
	}
	return t
}

// minimalCover returns a prime-ish cover of f: single-literal expansion of
// the minterm cover (repeatedly drop literals while the cube stays inside
// f, then remove covered cubes). Not Quine–McCluskey minimal, but compact
// enough for sane NAND trees.
func minimalCover(f logic.Func) []logic.Cube {
	n := f.NumVars()
	var cover []logic.Cube
	covered := logic.Const(n, false)
	size := uint(1) << n
	for m := uint(0); m < size; m++ {
		if !f.Eval(m) || covered.Eval(m) {
			continue
		}
		cube := make([]byte, n)
		for i := 0; i < n; i++ {
			if m>>i&1 == 1 {
				cube[i] = '1'
			} else {
				cube[i] = '0'
			}
		}
		// Expand: try dropping each literal.
		for i := 0; i < n; i++ {
			saved := cube[i]
			cube[i] = '-'
			if !cubeInside(cube, f) {
				cube[i] = saved
			}
		}
		c := logic.Cube(cube)
		cover = append(cover, c)
		cf, err := logic.FromSOP(n, []logic.Cube{c})
		if err != nil {
			panic(err) // cube constructed locally; cannot be malformed
		}
		covered = covered.Or(cf)
	}
	return cover
}

func cubeInside(cube []byte, f logic.Func) bool {
	g, err := logic.FromSOP(f.NumVars(), []logic.Cube{logic.Cube(cube)})
	if err != nil {
		panic(err)
	}
	return g.Implies(f)
}

// topoSOPs orders the SOP nodes so producers precede consumers.
func topoSOPs(nw *netlist.Network) ([]*netlist.SOPNode, error) {
	byOut := map[string]*netlist.SOPNode{}
	for _, n := range nw.SOPs {
		byOut[n.Output] = n
	}
	const (
		unvisited = 0
		visiting  = 1
		done      = 2
	)
	state := map[*netlist.SOPNode]int{}
	var order []*netlist.SOPNode
	var visit func(n *netlist.SOPNode) error
	visit = func(n *netlist.SOPNode) error {
		switch state[n] {
		case done:
			return nil
		case visiting:
			return fmt.Errorf("mapper: combinational cycle through %s", n.Output)
		}
		state[n] = visiting
		for _, in := range n.Inputs {
			if d, ok := byOut[in]; ok {
				if err := visit(d); err != nil {
					return err
				}
			}
		}
		state[n] = done
		order = append(order, n)
		return nil
	}
	for _, n := range nw.SOPs {
		if err := visit(n); err != nil {
			return nil, err
		}
	}
	return order, nil
}
