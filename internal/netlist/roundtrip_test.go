package netlist_test

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/circuit"
	"repro/internal/library"
	"repro/internal/mcnc"
	"repro/internal/netlist"
	"repro/internal/reorder"
	"repro/internal/stoch"
)

// TestGNLRoundTripRandomCircuits writes random optimized circuits to GNL
// and reads them back, checking configuration-exact reconstruction and
// functional equivalence.
func TestGNLRoundTripRandomCircuits(t *testing.T) {
	lib := library.Default()
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 5; trial++ {
		c, err := mcnc.Synthetic("rt", 20+rng.Intn(40), rng.Int63(), lib)
		if err != nil {
			t.Fatal(err)
		}
		// Optimize so the circuit carries non-proto configurations.
		pi := map[string]stoch.Signal{}
		for _, in := range c.Inputs {
			pi[in] = stoch.Signal{P: rng.Float64(), D: rng.Float64() * 1e6}
		}
		rep, err := reorder.Optimize(c, pi, reorder.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		var buf strings.Builder
		if err := netlist.WriteGNL(&buf, rep.Circuit); err != nil {
			t.Fatal(err)
		}
		back, err := netlist.ReadGNL(strings.NewReader(buf.String()), lib)
		if err != nil {
			t.Fatalf("reparse failed: %v", err)
		}
		// Configuration-exact reconstruction.
		orig := map[string]string{}
		for _, g := range rep.Circuit.Gates {
			orig[g.Name] = g.Cell.ConfigKey()
		}
		for _, g := range back.Gates {
			if orig[g.Name] != g.Cell.ConfigKey() {
				t.Fatalf("instance %s: config %s became %s", g.Name, orig[g.Name], g.Cell.ConfigKey())
			}
		}
		// Random-vector equivalence (synthetic circuits can be wide).
		ok, witness, err := circuit.EquivalentRandom(rep.Circuit, back, 64, rng)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("round trip changed behaviour: %s", witness)
		}
	}
}

// TestGNLDeterministicOutput checks the writer produces identical bytes
// for identical circuits (instances sorted).
func TestGNLDeterministicOutput(t *testing.T) {
	lib := library.Default()
	c, err := mcnc.Synthetic("det", 30, 5, lib)
	if err != nil {
		t.Fatal(err)
	}
	var a, b strings.Builder
	if err := netlist.WriteGNL(&a, c); err != nil {
		t.Fatal(err)
	}
	if err := netlist.WriteGNL(&b, c.Clone()); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("writer output not deterministic")
	}
}
