package netlist

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/logic"
)

const fullAdderBLIF = `# one-bit full adder
.model fa
.inputs a b cin
.outputs sum cout
.names a b cin sum
100 1
010 1
001 1
111 1
.names a b cin cout
11- 1
1-1 1
-11 1
.end
`

func TestParseBLIFFullAdder(t *testing.T) {
	nw, err := ParseBLIF(strings.NewReader(fullAdderBLIF))
	if err != nil {
		t.Fatal(err)
	}
	if nw.Name != "fa" {
		t.Errorf("name = %q", nw.Name)
	}
	if len(nw.Inputs) != 3 || len(nw.Outputs) != 2 || len(nw.SOPs) != 2 {
		t.Fatalf("structure: %d in, %d out, %d nodes", len(nw.Inputs), len(nw.Outputs), len(nw.SOPs))
	}
	sum, err := nw.SOPs[0].Func()
	if err != nil {
		t.Fatal(err)
	}
	wantSum := logic.MustParseExpr("a !b !cin + !a b !cin + !a !b cin + a b cin", []string{"a", "b", "cin"})
	if !sum.Equal(wantSum) {
		t.Errorf("sum function wrong: %v", sum)
	}
	cout, err := nw.SOPs[1].Func()
	if err != nil {
		t.Fatal(err)
	}
	wantCout := logic.MustParseExpr("a b + a cin + b cin", []string{"a", "b", "cin"})
	if !cout.Equal(wantCout) {
		t.Errorf("cout function wrong: %v", cout)
	}
}

func TestParseBLIFOffsetCover(t *testing.T) {
	src := `.model offs
.inputs a b
.outputs z
.names a b z
11 0
.end
`
	nw, err := ParseBLIF(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	f, err := nw.SOPs[0].Func()
	if err != nil {
		t.Fatal(err)
	}
	want := logic.MustParseExpr("!(a b)", []string{"a", "b"})
	if !f.Equal(want) {
		t.Errorf("off-set cover = %v, want nand", f)
	}
}

func TestParseBLIFConstants(t *testing.T) {
	src := `.model consts
.inputs a
.outputs one zero z
.names one
1
.names zero
.names a z
1 1
.end
`
	nw, err := ParseBLIF(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	one, err := nw.SOPs[0].Func()
	if err != nil {
		t.Fatal(err)
	}
	if !one.IsConst(true) {
		t.Error("constant-1 node wrong")
	}
	zero, err := nw.SOPs[1].Func()
	if err != nil {
		t.Fatal(err)
	}
	if !zero.IsConst(false) {
		t.Error("constant-0 node wrong")
	}
}

func TestParseBLIFContinuationAndComments(t *testing.T) {
	src := ".model wide # trailing comment\n" +
		".inputs a b \\\n c d\n" +
		".outputs z\n" +
		".names a b c d z\n" +
		"1111 1\n" +
		".end\n"
	nw, err := ParseBLIF(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(nw.Inputs) != 4 {
		t.Fatalf("continued .inputs parsed as %v", nw.Inputs)
	}
}

func TestParseBLIFGateLines(t *testing.T) {
	src := `.model mapped
.inputs a b
.outputs z
.gate nand2 y=z a=a b=b
.end
`
	nw, err := ParseBLIF(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(nw.Gates) != 1 {
		t.Fatalf("gates = %d", len(nw.Gates))
	}
	g := nw.Gates[0]
	if g.Cell != "nand2" || g.Out != "z" || g.Pins["a"] != "a" || g.Pins["b"] != "b" {
		t.Errorf("gate parsed wrong: %+v", g)
	}
}

func TestParseBLIFErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"no model", ".inputs a\n"},
		{"latch", ".model m\n.latch a b\n.end\n"},
		{"two models", ".model m\n.end\n.model n\n.end\n"},
		{"row outside names", ".model m\n11 1\n.end\n"},
		{"bad row width", ".model m\n.inputs a b\n.outputs z\n.names a b z\n1 1\n.end\n"},
		{"bad row output", ".model m\n.inputs a\n.outputs z\n.names a z\n1 x\n.end\n"},
		{"mixed cover", ".model m\n.inputs a b\n.outputs z\n.names a b z\n11 1\n00 0\n.end\n"},
		{"gate no output", ".model m\n.inputs a\n.outputs z\n.gate inv a=a\n.end\n"},
		{"gate bad binding", ".model m\n.inputs a\n.outputs z\n.gate inv y=z a\n.end\n"},
		{"undriven output", ".model m\n.inputs a\n.outputs z\n.end\n"},
		{"multiply driven", ".model m\n.inputs a\n.outputs z\n.names a z\n1 1\n.names a z\n0 1\n.end\n"},
		{"unknown construct", ".model m\n.clock c\n.end\n"},
		{"undriven node input", ".model m\n.inputs a\n.outputs z\n.names a ghost z\n11 1\n.end\n"},
	}
	for _, tc := range cases {
		if _, err := ParseBLIF(strings.NewReader(tc.src)); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestBLIFRoundTrip(t *testing.T) {
	nw, err := ParseBLIF(strings.NewReader(fullAdderBLIF))
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := WriteBLIF(&buf, nw); err != nil {
		t.Fatal(err)
	}
	nw2, err := ParseBLIF(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, buf.String())
	}
	if len(nw2.SOPs) != len(nw.SOPs) || len(nw2.Inputs) != len(nw.Inputs) {
		t.Fatal("round trip changed structure")
	}
	for i := range nw.SOPs {
		f1, _ := nw.SOPs[i].Func()
		f2, _ := nw2.SOPs[i].Func()
		if !f1.Equal(f2) {
			t.Errorf("node %s changed function", nw.SOPs[i].Output)
		}
	}
}

func TestWriteBLIFWrapsLongLines(t *testing.T) {
	nw := &Network{Name: "wide"}
	for i := 0; i < 40; i++ {
		nw.Inputs = append(nw.Inputs, fmt.Sprintf("%s%02d", strings.Repeat("x", 6), i))
	}
	nw.Outputs = []string{"z"}
	nw.SOPs = []*SOPNode{{Output: "z", Inputs: nil, Cubes: []logic.Cube{""}, Value: '1'}}
	var buf strings.Builder
	if err := WriteBLIF(&buf, nw); err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(buf.String(), "\n") {
		if len(line) > 80 {
			t.Fatalf("line longer than 80 columns: %q", line)
		}
	}
	if _, err := ParseBLIF(strings.NewReader(buf.String())); err != nil {
		t.Fatalf("wrapped output does not reparse: %v", err)
	}
}
