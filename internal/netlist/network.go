// Package netlist reads and writes gate-level circuit descriptions. Two
// formats are supported, both parsed by hand (no parser libraries):
//
//   - BLIF (Berkeley Logic Interchange Format), the format the MCNC
//     benchmarks ship in: .names nodes carry sum-of-products covers,
//     .gate nodes reference mapped library cells.
//   - GNL, a small native format that additionally records the chosen
//     transistor ordering (pd=/pu= attributes) so optimized circuits
//     round-trip exactly.
package netlist

import (
	"fmt"

	"repro/internal/logic"
)

// SOPNode is one .names node: a single-output sum-of-products cover.
type SOPNode struct {
	Output string
	Inputs []string
	Cubes  []logic.Cube // input parts only
	Value  byte         // '1': on-set cover, '0': off-set cover
}

// Func returns the node's boolean function over its input order.
func (n *SOPNode) Func() (logic.Func, error) {
	f, err := logic.FromSOP(len(n.Inputs), n.Cubes)
	if err != nil {
		return logic.Func{}, fmt.Errorf("netlist: node %s: %w", n.Output, err)
	}
	if n.Value == '0' {
		f = f.Not()
	}
	return f, nil
}

// GateNode is one .gate node: an instance of a named library cell.
type GateNode struct {
	Cell string            // library cell name
	Pins map[string]string // formal pin → actual net
	Out  string            // net bound to the output pin
}

// Network is a technology-independent (or mixed) logic network as read
// from BLIF: SOP nodes and/or mapped gate nodes.
type Network struct {
	Name    string
	Inputs  []string
	Outputs []string
	SOPs    []*SOPNode
	Gates   []*GateNode
}

// Validate checks net driving rules: every net driven at most once, every
// referenced net driven, outputs present.
func (nw *Network) Validate() error {
	driven := map[string]bool{}
	for _, in := range nw.Inputs {
		if driven[in] {
			return fmt.Errorf("netlist: %s: duplicate input %q", nw.Name, in)
		}
		driven[in] = true
	}
	for _, n := range nw.SOPs {
		if driven[n.Output] {
			return fmt.Errorf("netlist: %s: net %q multiply driven", nw.Name, n.Output)
		}
		driven[n.Output] = true
	}
	for _, g := range nw.Gates {
		if driven[g.Out] {
			return fmt.Errorf("netlist: %s: net %q multiply driven", nw.Name, g.Out)
		}
		driven[g.Out] = true
	}
	for _, n := range nw.SOPs {
		for _, in := range n.Inputs {
			if !driven[in] {
				return fmt.Errorf("netlist: %s: node %s reads undriven net %q", nw.Name, n.Output, in)
			}
		}
	}
	for _, g := range nw.Gates {
		for pin, net := range g.Pins {
			if !driven[net] {
				return fmt.Errorf("netlist: %s: gate pin %s reads undriven net %q", nw.Name, pin, net)
			}
		}
	}
	for _, o := range nw.Outputs {
		if !driven[o] {
			return fmt.Errorf("netlist: %s: output %q undriven", nw.Name, o)
		}
	}
	return nil
}
