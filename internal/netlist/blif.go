package netlist

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/logic"
)

// ParseBLIF reads one .model from a BLIF stream. Supported constructs:
// .model/.inputs/.outputs/.names/.gate/.end, '#' comments and '\'
// line continuations. Latches and multiple models are rejected — the
// paper (and this reproduction) treats combinational circuits only.
func ParseBLIF(r io.Reader) (*Network, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	nw := &Network{}
	var pending *SOPNode
	sawModel := false
	sawEnd := false
	lineNo := 0

	flushPending := func() {
		if pending != nil {
			nw.SOPs = append(nw.SOPs, pending)
			pending = nil
		}
	}

	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		// Line continuations.
		for strings.HasSuffix(strings.TrimRight(line, " \t"), "\\") && sc.Scan() {
			lineNo++
			line = strings.TrimRight(strings.TrimRight(line, " \t"), "\\") + " " + sc.Text()
			if i := strings.IndexByte(line, '#'); i >= 0 {
				line = line[:i]
			}
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		if sawEnd {
			return nil, fmt.Errorf("blif:%d: content after .end (multiple models are not supported)", lineNo)
		}
		switch fields[0] {
		case ".model":
			if sawModel {
				return nil, fmt.Errorf("blif:%d: second .model", lineNo)
			}
			sawModel = true
			if len(fields) > 1 {
				nw.Name = fields[1]
			}
		case ".inputs":
			flushPending()
			nw.Inputs = append(nw.Inputs, fields[1:]...)
		case ".outputs":
			flushPending()
			nw.Outputs = append(nw.Outputs, fields[1:]...)
		case ".names":
			flushPending()
			if len(fields) < 2 {
				return nil, fmt.Errorf("blif:%d: .names needs at least an output", lineNo)
			}
			pending = &SOPNode{
				Inputs: fields[1 : len(fields)-1],
				Output: fields[len(fields)-1],
				Value:  '1',
			}
		case ".gate":
			flushPending()
			g, err := parseGateLine(fields[1:], lineNo)
			if err != nil {
				return nil, err
			}
			nw.Gates = append(nw.Gates, g)
		case ".latch":
			return nil, fmt.Errorf("blif:%d: .latch unsupported (combinational circuits only)", lineNo)
		case ".end":
			flushPending()
			sawEnd = true
		default:
			if strings.HasPrefix(fields[0], ".") {
				return nil, fmt.Errorf("blif:%d: unsupported construct %s", lineNo, fields[0])
			}
			// Cover row of the pending .names node.
			if pending == nil {
				return nil, fmt.Errorf("blif:%d: cover row outside .names", lineNo)
			}
			if err := addCoverRow(pending, fields, lineNo); err != nil {
				return nil, err
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("blif: %w", err)
	}
	if !sawModel {
		return nil, fmt.Errorf("blif: no .model found")
	}
	flushPending()
	if err := nw.Validate(); err != nil {
		return nil, err
	}
	return nw, nil
}

func addCoverRow(n *SOPNode, fields []string, lineNo int) error {
	var inPart, outPart string
	switch {
	case len(n.Inputs) == 0 && len(fields) == 1:
		inPart, outPart = "", fields[0]
	case len(fields) == 2:
		inPart, outPart = fields[0], fields[1]
	default:
		return fmt.Errorf("blif:%d: malformed cover row %v for node %s", lineNo, fields, n.Output)
	}
	if len(inPart) != len(n.Inputs) {
		return fmt.Errorf("blif:%d: cover row %q has %d literals, node %s has %d inputs",
			lineNo, inPart, len(inPart), n.Output, len(n.Inputs))
	}
	if outPart != "1" && outPart != "0" {
		return fmt.Errorf("blif:%d: cover output %q must be 0 or 1", lineNo, outPart)
	}
	v := outPart[0]
	if len(n.Cubes) > 0 && n.Value != v {
		return fmt.Errorf("blif:%d: node %s mixes on-set and off-set rows", lineNo, n.Output)
	}
	n.Value = v
	n.Cubes = append(n.Cubes, logic.Cube(inPart))
	return nil
}

func parseGateLine(fields []string, lineNo int) (*GateNode, error) {
	if len(fields) < 2 {
		return nil, fmt.Errorf("blif:%d: .gate needs a cell and bindings", lineNo)
	}
	g := &GateNode{Cell: fields[0], Pins: map[string]string{}}
	for _, f := range fields[1:] {
		eq := strings.IndexByte(f, '=')
		if eq <= 0 || eq == len(f)-1 {
			return nil, fmt.Errorf("blif:%d: malformed binding %q", lineNo, f)
		}
		formal, actual := f[:eq], f[eq+1:]
		if formal == "O" || formal == "out" || formal == "y" || formal == "Y" {
			if g.Out != "" {
				return nil, fmt.Errorf("blif:%d: two output bindings on .gate %s", lineNo, g.Cell)
			}
			g.Out = actual
			continue
		}
		if _, dup := g.Pins[formal]; dup {
			return nil, fmt.Errorf("blif:%d: pin %s bound twice", lineNo, formal)
		}
		g.Pins[formal] = actual
	}
	if g.Out == "" {
		return nil, fmt.Errorf("blif:%d: .gate %s has no output binding (y=/out=/O=)", lineNo, g.Cell)
	}
	return g, nil
}

// WriteBLIF renders the network back to BLIF. SOP nodes keep their cover;
// gate nodes use .gate lines with y= output binding.
func WriteBLIF(w io.Writer, nw *Network) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, ".model %s\n", nw.Name)
	writeWrapped(bw, ".inputs", nw.Inputs)
	writeWrapped(bw, ".outputs", nw.Outputs)
	for _, n := range nw.SOPs {
		fmt.Fprintf(bw, ".names %s %s\n", strings.Join(n.Inputs, " "), n.Output)
		for _, cube := range n.Cubes {
			if len(n.Inputs) == 0 {
				fmt.Fprintf(bw, "%c\n", n.Value)
				continue
			}
			fmt.Fprintf(bw, "%s %c\n", string(cube), n.Value)
		}
	}
	for _, g := range nw.Gates {
		fmt.Fprintf(bw, ".gate %s y=%s", g.Cell, g.Out)
		pins := make([]string, 0, len(g.Pins))
		for p := range g.Pins {
			pins = append(pins, p)
		}
		sort.Strings(pins)
		for _, p := range pins {
			fmt.Fprintf(bw, " %s=%s", p, g.Pins[p])
		}
		fmt.Fprintln(bw)
	}
	fmt.Fprintln(bw, ".end")
	return bw.Flush()
}

func writeWrapped(w *bufio.Writer, directive string, names []string) {
	fmt.Fprint(w, directive)
	col := len(directive)
	for _, n := range names {
		if col+1+len(n) > 78 {
			fmt.Fprint(w, " \\\n ")
			col = 1
		}
		fmt.Fprint(w, " "+n)
		col += 1 + len(n)
	}
	fmt.Fprintln(w)
}
