package netlist_test

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/library"
	"repro/internal/netlist"
)

// TestParseBLIFNeverPanics throws random byte soup and random mutations
// of valid BLIF at the parser: it must return an error or a network,
// never panic.
func TestParseBLIFNeverPanics(t *testing.T) {
	valid := `.model fuzz
.inputs a b c
.outputs z
.names a b t
11 1
.names t c z
00 1
.end
`
	tokens := []string{
		".model", ".inputs", ".outputs", ".names", ".gate", ".end", ".latch",
		"a", "b", "z", "11 1", "0- 1", "\\", "#x", "=", "y=z", "1", "-",
	}
	cfg := &quick.Config{MaxCount: 300}
	err := quick.Check(func(seed int64) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				t.Logf("panic on seed %d: %v", seed, r)
				ok = false
			}
		}()
		rng := rand.New(rand.NewSource(seed))
		var src string
		if rng.Intn(2) == 0 {
			// Random token soup.
			var b strings.Builder
			for i := 0; i < rng.Intn(40); i++ {
				b.WriteString(tokens[rng.Intn(len(tokens))])
				if rng.Intn(3) == 0 {
					b.WriteByte('\n')
				} else {
					b.WriteByte(' ')
				}
			}
			src = b.String()
		} else {
			// Mutate the valid netlist: delete/duplicate random lines.
			lines := strings.Split(valid, "\n")
			var out []string
			for _, l := range lines {
				switch rng.Intn(5) {
				case 0: // drop
				case 1:
					out = append(out, l, l)
				default:
					out = append(out, l)
				}
			}
			src = strings.Join(out, "\n")
		}
		_, _ = netlist.ParseBLIF(strings.NewReader(src))
		return true
	}, cfg)
	if err != nil {
		t.Error(err)
	}
}

// TestReadGNLNeverPanics mirrors the BLIF fuzz for the native format.
func TestReadGNLNeverPanics(t *testing.T) {
	valid := `circuit fuzz
inputs a b
outputs z
gate u1 nand2 y=z a=a b=b pd=s(a,b) pu=p(a,b)
end
`
	lib := library.Default()
	cfg := &quick.Config{MaxCount: 300}
	err := quick.Check(func(seed int64) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				t.Logf("panic on seed %d: %v", seed, r)
				ok = false
			}
		}()
		rng := rand.New(rand.NewSource(seed))
		lines := strings.Split(valid, "\n")
		var out []string
		for _, l := range lines {
			switch rng.Intn(6) {
			case 0:
			case 1:
				out = append(out, l, l)
			case 2:
				// Corrupt a character.
				if len(l) > 0 {
					i := rng.Intn(len(l))
					out = append(out, l[:i]+"~"+l[i:])
				}
			default:
				out = append(out, l)
			}
		}
		_, _ = netlist.ReadGNL(strings.NewReader(strings.Join(out, "\n")), lib)
		return true
	}, cfg)
	if err != nil {
		t.Error(err)
	}
}
