package netlist

import (
	"strings"
	"testing"

	"repro/internal/circuit"
	"repro/internal/library"
)

const smallGNL = `# a two-gate circuit
circuit demo
inputs a b c
outputs z
gate u1 nand2 y=m a=a b=b
gate u2 oai21 y=z a1=m a2=c b=a pd=s(b,p(a1,a2)) pu=p(s(a1,a2),b)
end
`

func TestReadGNL(t *testing.T) {
	c, err := ReadGNL(strings.NewReader(smallGNL), library.Default())
	if err != nil {
		t.Fatal(err)
	}
	if c.Name != "demo" || len(c.Gates) != 2 {
		t.Fatalf("parsed %s with %d gates", c.Name, len(c.Gates))
	}
	u2 := c.Gates[1]
	if u2.Cell.Name != "oai21" {
		t.Fatalf("u2 cell = %s", u2.Cell.Name)
	}
	// The explicit pd= puts b at the output side: not the proto config.
	proto := library.Default().MustCell("oai21").Proto
	if u2.Cell.ConfigKey() == proto.ConfigKey() {
		t.Error("explicit configuration ignored")
	}
	if u2.Pins[0] != "m" || u2.Pins[1] != "c" || u2.Pins[2] != "a" {
		t.Errorf("pin binding = %v", u2.Pins)
	}
}

func TestReadGNLDefaultsToProto(t *testing.T) {
	c, err := ReadGNL(strings.NewReader(smallGNL), library.Default())
	if err != nil {
		t.Fatal(err)
	}
	proto := library.Default().MustCell("nand2").Proto
	if c.Gates[0].Cell.ConfigKey() != proto.ConfigKey() {
		t.Error("gate without pd=/pu= did not get the proto configuration")
	}
}

func TestGNLRoundTrip(t *testing.T) {
	c, err := ReadGNL(strings.NewReader(smallGNL), library.Default())
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := WriteGNL(&buf, c); err != nil {
		t.Fatal(err)
	}
	c2, err := ReadGNL(strings.NewReader(buf.String()), library.Default())
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, buf.String())
	}
	if len(c2.Gates) != len(c.Gates) {
		t.Fatal("gate count changed")
	}
	// Configurations survive the round trip exactly.
	byName := map[string]*circuit.Instance{}
	for _, g := range c2.Gates {
		byName[g.Name] = g
	}
	for _, g := range c.Gates {
		g2 := byName[g.Name]
		if g2 == nil {
			t.Fatalf("instance %s lost", g.Name)
		}
		if g2.Cell.ConfigKey() != g.Cell.ConfigKey() {
			t.Errorf("instance %s: config %s became %s", g.Name, g.Cell.ConfigKey(), g2.Cell.ConfigKey())
		}
	}
}

func TestReadGNLErrors(t *testing.T) {
	lib := library.Default()
	cases := []struct {
		name string
		src  string
	}{
		{"no circuit", "inputs a\nend\n"},
		{"no end", "circuit c\ninputs a\n"},
		{"unknown cell", "circuit c\ninputs a\noutputs z\ngate u1 frob y=z a=a\nend\n"},
		{"missing pin", "circuit c\ninputs a\noutputs z\ngate u1 nand2 y=z a=a\nend\n"},
		{"extra pin", "circuit c\ninputs a\noutputs z\ngate u1 inv y=z a=a b=a\nend\n"},
		{"no output", "circuit c\ninputs a\noutputs z\ngate u1 inv a=a\nend\n"},
		{"bad pd", "circuit c\ninputs a b\noutputs z\ngate u1 nand2 y=z a=a b=b pd=s(a\nend\n"},
		{"wrong shape pd", "circuit c\ninputs a b\noutputs z\ngate u1 nand2 y=z a=a b=b pd=p(a,b)\nend\n"},
		{"unknown directive", "circuit c\nfrobnicate\nend\n"},
		{"undriven pin", "circuit c\ninputs a\noutputs z\ngate u1 nand2 y=z a=a b=ghost\nend\n"},
		{"double drive", "circuit c\ninputs a\noutputs z\ngate u1 inv y=z a=a\ngate u2 inv y=z a=a\nend\n"},
		{"content after end", "circuit c\ninputs a\noutputs a\nend\ninputs b\n"},
	}
	for _, tc := range cases {
		if _, err := ReadGNL(strings.NewReader(tc.src), lib); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestReadGNLTrivialOutputFromInput(t *testing.T) {
	// An output directly driven by an input is legal.
	src := "circuit c\ninputs a\noutputs a\nend\n"
	c, err := ReadGNL(strings.NewReader(src), library.Default())
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Gates) != 0 {
		t.Error("unexpected gates")
	}
}

// TestReadGNLErrorsStructural covers the malformed-line and net-rule
// error paths the differential harness's replay parser depends on:
// duplicate nets, duplicate names, broken bindings, missing outputs.
func TestReadGNLErrorsStructural(t *testing.T) {
	lib := library.Default()
	cases := []struct {
		name string
		src  string
		want string // substring expected in the error
	}{
		{"duplicate primary input",
			"circuit c\ninputs a a\noutputs a\nend\n", "duplicate primary input"},
		{"duplicate instance name",
			"circuit c\ninputs a\noutputs z w\ngate u1 inv y=z a=a\ngate u1 inv y=w a=a\nend\n",
			"duplicate instance name"},
		{"net driven by input and gate",
			"circuit c\ninputs a z\noutputs z\ngate u1 inv y=z a=a\nend\n", "driven by both"},
		{"pin bound twice",
			"circuit c\ninputs a b\noutputs z\ngate u1 nand2 y=z a=a a=b b=b\nend\n", "bound twice"},
		{"binding without value",
			"circuit c\ninputs a\noutputs z\ngate u1 inv y=z a=\nend\n", "malformed binding"},
		{"binding without key",
			"circuit c\ninputs a\noutputs z\ngate u1 inv y=z =a\nend\n", "malformed binding"},
		{"binding without equals",
			"circuit c\ninputs a\noutputs z\ngate u1 inv y=z a\nend\n", "malformed binding"},
		{"gate line too short",
			"circuit c\ninputs a\noutputs a\ngate u1\nend\n", "gate line needs"},
		{"missing output net",
			"circuit c\ninputs a\noutputs z ghost\ngate u1 inv y=z a=a\nend\n", "undriven"},
		{"second circuit line",
			"circuit c\ncircuit d\ninputs a\noutputs a\nend\n", "second circuit"},
		{"circuit line without name",
			"circuit\ninputs a\noutputs a\nend\n", "exactly one name"},
		{"bad pu expression",
			"circuit c\ninputs a b\noutputs z\ngate u1 nand2 y=z a=a b=b pu=p(a,\nend\n", "pu"},
		{"combinational cycle",
			"circuit c\ninputs a\noutputs z\ngate u1 nand2 y=z a=a b=w\ngate u2 inv y=w a=z\nend\n",
			"cycle"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReadGNL(strings.NewReader(tc.src), lib)
			if err == nil {
				t.Fatalf("accepted:\n%s", tc.src)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestReadGNLCommentAndBlankHandling: comments and blank lines are
// skipped anywhere, including inside and after gate lists.
func TestReadGNLCommentAndBlankHandling(t *testing.T) {
	src := "# header\n\ncircuit c # trailing\n  \ninputs a\n# mid\noutputs z\ngate u1 inv y=z a=a # gate comment\n\nend\n# trailer comments are fine before EOF\n"
	c, err := ReadGNL(strings.NewReader(src), library.Default())
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Gates) != 1 || c.Name != "c" {
		t.Fatalf("parsed wrong circuit: %+v", c)
	}
}
