package netlist

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/circuit"
	"repro/internal/gate"
	"repro/internal/library"
	"repro/internal/sp"
)

// GNL is this repository's native gate-netlist format. Unlike mapped BLIF
// it records, per instance, the chosen transistor ordering of both
// networks, so circuits round-trip through optimization losslessly:
//
//	# comment
//	circuit <name>
//	inputs <net> ...
//	outputs <net> ...
//	gate <instance> <cell> y=<net> <pin>=<net> ... [pd=<expr>] [pu=<expr>]
//	end
//
// pd=/pu= are sp-syntax expressions over the cell's pin names; omitting
// them selects the cell's canonical configuration.

// ReadGNL parses a GNL stream, resolving cells against lib.
func ReadGNL(r io.Reader, lib *library.Library) (*circuit.Circuit, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	c := &circuit.Circuit{}
	lineNo := 0
	sawCircuit, sawEnd := false, false
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		if sawEnd {
			return nil, fmt.Errorf("gnl:%d: content after end", lineNo)
		}
		switch fields[0] {
		case "circuit":
			if sawCircuit {
				return nil, fmt.Errorf("gnl:%d: second circuit line", lineNo)
			}
			if len(fields) != 2 {
				return nil, fmt.Errorf("gnl:%d: circuit line needs exactly one name", lineNo)
			}
			sawCircuit = true
			c.Name = fields[1]
		case "inputs":
			c.Inputs = append(c.Inputs, fields[1:]...)
		case "outputs":
			c.Outputs = append(c.Outputs, fields[1:]...)
		case "gate":
			inst, err := parseGNLGate(fields[1:], lib, lineNo)
			if err != nil {
				return nil, err
			}
			c.Gates = append(c.Gates, inst)
		case "end":
			sawEnd = true
		default:
			return nil, fmt.Errorf("gnl:%d: unknown directive %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("gnl: %w", err)
	}
	if !sawCircuit {
		return nil, fmt.Errorf("gnl: missing circuit line")
	}
	if !sawEnd {
		return nil, fmt.Errorf("gnl: missing end line")
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return c, nil
}

func parseGNLGate(fields []string, lib *library.Library, lineNo int) (*circuit.Instance, error) {
	if len(fields) < 3 {
		return nil, fmt.Errorf("gnl:%d: gate line needs instance, cell and bindings", lineNo)
	}
	instName, cellName := fields[0], fields[1]
	cell, ok := lib.Cell(cellName)
	if !ok {
		return nil, fmt.Errorf("gnl:%d: unknown cell %q", lineNo, cellName)
	}
	pins := map[string]string{}
	out := ""
	var pdSrc, puSrc string
	for _, f := range fields[2:] {
		eq := strings.IndexByte(f, '=')
		if eq <= 0 || eq == len(f)-1 {
			return nil, fmt.Errorf("gnl:%d: malformed binding %q", lineNo, f)
		}
		key, val := f[:eq], f[eq+1:]
		switch key {
		case "y":
			out = val
		case "pd":
			pdSrc = val
		case "pu":
			puSrc = val
		default:
			if _, dup := pins[key]; dup {
				return nil, fmt.Errorf("gnl:%d: pin %s bound twice", lineNo, key)
			}
			pins[key] = val
		}
	}
	if out == "" {
		return nil, fmt.Errorf("gnl:%d: gate %s has no y= binding", lineNo, instName)
	}
	ordered := make([]string, len(cell.Inputs))
	for i, pin := range cell.Inputs {
		net, ok := pins[pin]
		if !ok {
			return nil, fmt.Errorf("gnl:%d: gate %s (%s) missing pin %s", lineNo, instName, cellName, pin)
		}
		ordered[i] = net
		delete(pins, pin)
	}
	if len(pins) != 0 {
		return nil, fmt.Errorf("gnl:%d: gate %s has extra bindings %v", lineNo, instName, pins)
	}
	cfg := cell.Proto
	if pdSrc != "" || puSrc != "" {
		pdExpr := cell.Proto.PD
		puExpr := cell.Proto.PU
		var err error
		if pdSrc != "" {
			if pdExpr, err = sp.Parse(pdSrc); err != nil {
				return nil, fmt.Errorf("gnl:%d: gate %s pd: %w", lineNo, instName, err)
			}
		}
		if puSrc != "" {
			if puExpr, err = sp.Parse(puSrc); err != nil {
				return nil, fmt.Errorf("gnl:%d: gate %s pu: %w", lineNo, instName, err)
			}
		}
		if cfg, err = cell.Proto.WithOrdering(pdExpr, puExpr); err != nil {
			return nil, fmt.Errorf("gnl:%d: gate %s: %w", lineNo, instName, err)
		}
		if _, err := gate.NewWithPU(cfg.Name, cfg.Inputs, cfg.PD, cfg.PU); err != nil {
			return nil, fmt.Errorf("gnl:%d: gate %s: %w", lineNo, instName, err)
		}
	}
	return &circuit.Instance{Name: instName, Cell: cfg, Pins: ordered, Out: out}, nil
}

// WriteGNL renders the circuit with explicit configurations.
func WriteGNL(w io.Writer, c *circuit.Circuit) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "circuit %s\n", c.Name)
	fmt.Fprintf(bw, "inputs %s\n", strings.Join(c.Inputs, " "))
	fmt.Fprintf(bw, "outputs %s\n", strings.Join(c.Outputs, " "))
	gates := append([]*circuit.Instance(nil), c.Gates...)
	sort.Slice(gates, func(i, j int) bool { return gates[i].Name < gates[j].Name })
	for _, g := range gates {
		fmt.Fprintf(bw, "gate %s %s y=%s", g.Name, g.Cell.Name, g.Out)
		for i, pin := range g.Cell.Inputs {
			fmt.Fprintf(bw, " %s=%s", pin, g.Pins[i])
		}
		fmt.Fprintf(bw, " pd=%s pu=%s\n", g.Cell.PD, g.Cell.PU)
	}
	fmt.Fprintln(bw, "end")
	return bw.Flush()
}
