// Package gate represents static CMOS gates at the transistor level,
// exactly as the paper's Figure 2(a): a graph whose nodes are the power
// rails, the output node y, and the internal nodes of the pull-up and
// pull-down networks, and whose edges are the transistors. It extracts the
// path functions H_nk (node to vdd) and G_nk (node to vss) by depth-first
// path enumeration (Figure 2(b)) and enumerates all transistor
// reorderings of a gate, both combinatorially and with the paper's pivot
// search (Figure 4).
package gate

import (
	"fmt"
	"sort"

	"repro/internal/logic"
	"repro/internal/sp"
)

// NodeID identifies a node of the gate graph.
type NodeID int

// Fixed node identifiers; internal nodes follow.
const (
	Vss NodeID = iota // ground rail
	Vdd               // power rail
	Y                 // gate output
	firstInternal
)

// TransType distinguishes NMOS from PMOS transistors.
type TransType uint8

// Transistor types.
const (
	NMOS TransType = iota // conducts when its input is 1
	PMOS                  // conducts when its input is 0
)

func (t TransType) String() string {
	if t == NMOS {
		return "nmos"
	}
	return "pmos"
}

// Edge is one transistor: an undirected channel between nodes A and B
// whose conduction is controlled by Input.
type Edge struct {
	Type  TransType
	Input string
	A, B  NodeID
}

// Graph is the transistor-level view of one gate configuration.
type Graph struct {
	Inputs    []string // pin names in declaration order
	NumNodes  int      // total nodes including rails and y
	Edges     []Edge
	pdNodes   int // internal nodes belonging to the pull-down network
	puNodes   int // internal nodes belonging to the pull-up network
	nodeNames []string
}

// NumInternal returns the number of internal nodes (excluding rails and y).
func (g *Graph) NumInternal() int { return g.NumNodes - int(firstInternal) }

// NodeName returns a printable name for a node ("vss", "vdd", "y", "n0"…).
func (g *Graph) NodeName(n NodeID) string {
	if int(n) < len(g.nodeNames) {
		return g.nodeNames[n]
	}
	return fmt.Sprintf("n?%d", int(n))
}

// InternalNodes lists the internal node IDs, pull-down nodes first.
func (g *Graph) InternalNodes() []NodeID {
	ids := make([]NodeID, g.NumInternal())
	for i := range ids {
		ids[i] = firstInternal + NodeID(i)
	}
	return ids
}

// Degree returns the number of transistor terminals attached to node n;
// the capacitance model charges one junction capacitance per terminal.
func (g *Graph) Degree(n NodeID) int {
	d := 0
	for _, e := range g.Edges {
		if e.A == n || e.B == n {
			d++
		}
	}
	return d
}

// BuildGraph constructs the transistor graph for a gate configuration
// given its ordered pull-down network. The pull-up network is the ordered
// expression pu; pass pd.Dual() for the canonical complementary pull-up.
// The pull-down's first series element is attached at y (its serialization
// order runs output → ground); the pull-up's first element is attached at
// vdd (order runs power → output), matching the schematic convention of
// Figure 1.
func BuildGraph(inputs []string, pd, pu *sp.Expr) (*Graph, error) {
	if err := pd.Validate(); err != nil {
		return nil, fmt.Errorf("gate: pull-down: %w", err)
	}
	if err := pu.Validate(); err != nil {
		return nil, fmt.Errorf("gate: pull-up: %w", err)
	}
	pdf := pd.Flatten()
	puf := pu.Flatten()
	g := &Graph{
		Inputs:    append([]string(nil), inputs...),
		NumNodes:  int(firstInternal),
		nodeNames: []string{"vss", "vdd", "y"},
	}
	known := map[string]bool{}
	for _, in := range inputs {
		if known[in] {
			return nil, fmt.Errorf("gate: duplicate input %q", in)
		}
		known[in] = true
	}
	for _, in := range pdf.Inputs() {
		if !known[in] {
			return nil, fmt.Errorf("gate: pull-down input %q not among gate inputs %v", in, inputs)
		}
	}
	for _, in := range puf.Inputs() {
		if !known[in] {
			return nil, fmt.Errorf("gate: pull-up input %q not among gate inputs %v", in, inputs)
		}
	}
	if pdf.NumTransistors() != len(inputs) || puf.NumTransistors() != len(inputs) {
		return nil, fmt.Errorf("gate: networks must use each of the %d inputs exactly once", len(inputs))
	}
	g.build(pdf, Y, Vss, NMOS)
	g.pdNodes = g.NumInternal()
	g.build(puf, Vdd, Y, PMOS)
	g.puNodes = g.NumInternal() - g.pdNodes
	return g, nil
}

// newInternal allocates an internal node.
func (g *Graph) newInternal() NodeID {
	id := NodeID(g.NumNodes)
	g.NumNodes++
	g.nodeNames = append(g.nodeNames, fmt.Sprintf("n%d", int(id-firstInternal)))
	return id
}

// build lays the network expression down between nodes top and bottom.
func (g *Graph) build(e *sp.Expr, top, bottom NodeID, t TransType) {
	switch e.Kind {
	case sp.Leaf:
		g.Edges = append(g.Edges, Edge{Type: t, Input: e.Input, A: top, B: bottom})
	case sp.Parallel:
		for _, c := range e.Children {
			g.build(c, top, bottom, t)
		}
	case sp.Series:
		cur := top
		for i, c := range e.Children {
			next := bottom
			if i < len(e.Children)-1 {
				next = g.newInternal()
			}
			g.build(c, cur, next, t)
			cur = next
		}
	}
}

// conduction returns the literal under which edge e conducts.
func (g *Graph) conduction(e Edge, vars map[string]int, n int) logic.Func {
	v := logic.Var(vars[e.Input], n)
	if e.Type == PMOS {
		v = v.Not()
	}
	return v
}

// PathFunc computes the boolean function that is 1 exactly when a path of
// conducting transistors connects node from to node to — the paper's H_nk
// (to = Vdd) and G_nk (to = Vss). It enumerates simple paths depth-first,
// OR-ing the conjunction of edge literals along each path, exactly the
// CALCULATE_H_FUNCTION procedure of Figure 2(b).
func (g *Graph) PathFunc(from, to NodeID) logic.Func {
	vars := make(map[string]int, len(g.Inputs))
	for i, in := range g.Inputs {
		vars[in] = i
	}
	n := len(g.Inputs)
	acc := logic.Const(n, false)
	visited := make([]bool, g.NumNodes)
	var dfs func(cur NodeID, path logic.Func)
	dfs = func(cur NodeID, path logic.Func) {
		if cur == to {
			acc = acc.Or(path)
			return
		}
		visited[cur] = true
		for _, e := range g.Edges {
			var next NodeID
			switch {
			case e.A == cur:
				next = e.B
			case e.B == cur:
				next = e.A
			default:
				continue
			}
			// Never route through the opposite rail: rails are supplies,
			// not wires.
			if next != to && (next == Vdd || next == Vss) {
				continue
			}
			if visited[next] {
				continue
			}
			dfs(next, path.And(g.conduction(e, vars, n)))
		}
		visited[cur] = false
	}
	dfs(from, logic.Const(n, true))
	return acc
}

// H returns H_nk, the function of all paths from node nk to vdd.
func (g *Graph) H(nk NodeID) logic.Func { return g.PathFunc(nk, Vdd) }

// G returns G_nk, the function of all paths from node nk to vss.
func (g *Graph) G(nk NodeID) logic.Func { return g.PathFunc(nk, Vss) }

// OutputFunc returns the gate's logic function y = H_y. For a
// well-formed complementary gate this equals ¬G_y.
func (g *Graph) OutputFunc() logic.Func { return g.H(Y) }

// CheckComplementary verifies the static CMOS invariants: H_y = ¬G_y
// (exactly one network drives y under every input assignment) and
// H_nk·G_nk = 0 for every node (no rail-to-rail short through any node).
func (g *Graph) CheckComplementary() error {
	hy, gy := g.H(Y), g.G(Y)
	if !hy.Equal(gy.Not()) {
		return fmt.Errorf("gate: output not complementary: H_y=%v G_y=%v", hy, gy)
	}
	for _, nk := range g.InternalNodes() {
		h, gg := g.H(nk), g.G(nk)
		if !h.And(gg).IsConst(false) {
			return fmt.Errorf("gate: node %s can short vdd to vss", g.NodeName(nk))
		}
	}
	return nil
}

// NodeStateAt returns the steady logic value of every node under the
// given input minterm after the gate settles, with charge retention:
// driven nodes take their rail value, undriven nodes keep prev (prev may
// be nil, in which case undriven nodes default to false). Used by the
// switch-level simulator and by tests cross-checking H/G.
//
// Each call allocates; hot loops should hold a NewEvaluator and call
// StateAt with a reusable destination slice instead.
func (g *Graph) NodeStateAt(m uint, prev []bool) []bool {
	return g.NewEvaluator().StateAt(m, prev, nil)
}

// adjEdge is one transistor terminal as seen from a node: the node on the
// other side of the channel and the condition under which it conducts.
type adjEdge struct {
	next  NodeID
	input int // gate input index controlling the channel
	pmos  bool
}

// Evaluator resolves node states for one Graph without allocating per
// call: the adjacency lists, the flood work stack and the visit stamps are
// built once and reused. An Evaluator is not safe for concurrent use.
type Evaluator struct {
	g     *Graph
	adj   [][]adjEdge
	stack []NodeID
	seen  []int32
	stamp int32
}

// NewEvaluator builds a reusable node-state evaluator for the graph.
func (g *Graph) NewEvaluator() *Evaluator {
	adj := make([][]adjEdge, g.NumNodes)
	for _, e := range g.Edges {
		i := g.inputIndex(e.Input)
		adj[e.A] = append(adj[e.A], adjEdge{next: e.B, input: i, pmos: e.Type == PMOS})
		adj[e.B] = append(adj[e.B], adjEdge{next: e.A, input: i, pmos: e.Type == PMOS})
	}
	return &Evaluator{
		g:     g,
		adj:   adj,
		stack: make([]NodeID, 0, g.NumNodes),
		seen:  make([]int32, g.NumNodes),
	}
}

// StateAt computes the settled node state under input minterm m with
// charge retention from prev (nil: undriven nodes read false), writing the
// result into dst (allocated when nil; otherwise len(dst) must equal
// NumNodes) and returning it. dst and prev may not alias.
func (ev *Evaluator) StateAt(m uint, prev, dst []bool) []bool {
	g := ev.g
	if dst == nil {
		dst = make([]bool, g.NumNodes)
	}
	if prev == nil {
		for n := range dst {
			dst[n] = false
		}
	} else {
		copy(dst, prev)
	}
	// Flood from each rail across conducting edges; nodes not reached by
	// either flood keep their retained charge.
	ev.flood(Vdd, true, m, dst)
	ev.flood(Vss, false, m, dst)
	dst[Vdd], dst[Vss] = true, false
	return dst
}

// flood walks conducting channels from a rail, driving every reached node
// to val. Rails are supplies, not wires: the walk never continues through
// the opposite rail.
func (ev *Evaluator) flood(from NodeID, val bool, m uint, dst []bool) {
	ev.stamp++
	if ev.stamp <= 0 { // stamp wrapped: stale marks could collide
		for i := range ev.seen {
			ev.seen[i] = 0
		}
		ev.stamp = 1
	}
	stack := append(ev.stack[:0], from)
	ev.seen[from] = ev.stamp
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if cur != Vdd && cur != Vss {
			dst[cur] = val
		}
		for _, e := range ev.adj[cur] {
			on := m>>e.input&1 == 1
			if e.pmos {
				on = !on
			}
			if !on {
				continue
			}
			if e.next == Vdd || e.next == Vss || ev.seen[e.next] == ev.stamp {
				continue
			}
			ev.seen[e.next] = ev.stamp
			stack = append(stack, e.next)
		}
	}
	ev.stack = stack[:0]
}

func (g *Graph) inputIndex(name string) int {
	for i, in := range g.Inputs {
		if in == name {
			return i
		}
	}
	panic(fmt.Sprintf("gate: unknown input %q", name))
}

// String renders the edge list for debugging.
func (g *Graph) String() string {
	lines := make([]string, 0, len(g.Edges))
	for _, e := range g.Edges {
		lines = append(lines, fmt.Sprintf("%s %s %s-%s", e.Type, e.Input, g.NodeName(e.A), g.NodeName(e.B)))
	}
	sort.Strings(lines)
	out := ""
	for i, l := range lines {
		if i > 0 {
			out += "; "
		}
		out += l
	}
	return out
}
