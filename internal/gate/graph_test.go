package gate

import (
	"testing"

	"repro/internal/logic"
	"repro/internal/sp"
)

// motivationGate returns the paper's y = ¬((a1+a2)·b) gate in the
// configuration of Fig. 2(a): pull-down pair (a1∥a2) at the output, b at
// ground; canonical dual pull-up.
func motivationGate(t testing.TB) *Gate {
	t.Helper()
	g, err := New("oai21", []string{"a1", "a2", "b"}, sp.MustParse("s(p(a1,a2),b)"))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestBuildGraphCounts(t *testing.T) {
	g := motivationGate(t)
	gr, err := g.Graph()
	if err != nil {
		t.Fatal(err)
	}
	// 3 NMOS + 3 PMOS transistors.
	if len(gr.Edges) != 6 {
		t.Errorf("edges = %d, want 6", len(gr.Edges))
	}
	// PDN: 1 internal node (between pair and b). PUN p(s(a1,a2),b): 1.
	if gr.NumInternal() != 2 {
		t.Errorf("internal nodes = %d, want 2", gr.NumInternal())
	}
}

func TestHGMatchPaperExample(t *testing.T) {
	// Paper Sec. 3.3.2 computes, for the internal pull-down node n1 of the
	// Fig. 2(a) configuration: H_n1 = ¬b·(a1+a2) and G_n1 = b.
	g := motivationGate(t)
	gr, err := g.Graph()
	if err != nil {
		t.Fatal(err)
	}
	names := []string{"a1", "a2", "b"}
	n1 := gr.InternalNodes()[0] // first pull-down internal node
	wantH := logic.MustParseExpr("!b (a1 + a2)", names)
	wantG := logic.MustParseExpr("b", names)
	if got := gr.H(n1); !got.Equal(wantH) {
		t.Errorf("H_n1 = %v, want %v", got, wantH)
	}
	if got := gr.G(n1); !got.Equal(wantG) {
		t.Errorf("G_n1 = %v, want %v", got, wantG)
	}
}

func TestOutputFunction(t *testing.T) {
	g := motivationGate(t)
	f, err := g.Func()
	if err != nil {
		t.Fatal(err)
	}
	want := logic.MustParseExpr("!((a1 + a2) b)", []string{"a1", "a2", "b"})
	if !f.Equal(want) {
		t.Errorf("Func = %v, want %v", f, want)
	}
	gr, _ := g.Graph()
	if !gr.OutputFunc().Equal(want) {
		t.Error("graph OutputFunc differs from gate Func")
	}
}

func TestCheckComplementary(t *testing.T) {
	g := motivationGate(t)
	gr, _ := g.Graph()
	if err := gr.CheckComplementary(); err != nil {
		t.Errorf("complementary gate rejected: %v", err)
	}
	// A deliberately broken gate: pull-up is NOT the dual (same topology as
	// pull-down). NewWithPU must reject it.
	if _, err := NewWithPU("bad", []string{"a", "b"},
		sp.MustParse("s(a,b)"), sp.MustParse("s(a,b)")); err == nil {
		t.Error("non-complementary pull-up accepted")
	}
}

func TestHGComplementOnlyAtOutput(t *testing.T) {
	// Footnote 2 of the paper: G_nk and H_nk are complementary only when
	// nk is the output node.
	g := motivationGate(t)
	gr, _ := g.Graph()
	hy, gy := gr.H(Y), gr.G(Y)
	if !hy.Equal(gy.Not()) {
		t.Error("output H/G not complementary")
	}
	n1 := gr.InternalNodes()[0]
	h1, g1 := gr.H(n1), gr.G(n1)
	if h1.Equal(g1.Not()) {
		t.Error("internal node H/G unexpectedly complementary")
	}
	if !h1.And(g1).IsConst(false) {
		t.Error("internal node H·G != 0 (short circuit)")
	}
}

func TestAllConfigsCountMotivationGate(t *testing.T) {
	// Fig. 1(a): the motivation gate has exactly 4 configurations.
	g := motivationGate(t)
	if got := g.CountConfigs(); got != 4 {
		t.Fatalf("CountConfigs = %d, want 4", got)
	}
	configs := g.AllConfigs()
	if len(configs) != 4 {
		t.Fatalf("AllConfigs = %d, want 4", len(configs))
	}
	// All configurations implement the same function.
	ref, _ := g.Func()
	keys := map[string]bool{}
	for _, c := range configs {
		f, err := c.Func()
		if err != nil {
			t.Fatal(err)
		}
		if !f.Equal(ref) {
			t.Errorf("config %s changed the function", c.ConfigKey())
		}
		if keys[c.ConfigKey()] {
			t.Errorf("duplicate config %s", c.ConfigKey())
		}
		keys[c.ConfigKey()] = true
		if c.ShapeKey() != g.ShapeKey() {
			t.Errorf("config %s changed the shape", c.ConfigKey())
		}
	}
}

func TestFindAllConfigsMatchesEnumeration(t *testing.T) {
	gates := []*Gate{
		MustNew("nand2", []string{"a", "b"}, sp.MustParse("s(a,b)")),
		MustNew("nand3", []string{"a", "b", "c"}, sp.MustParse("s(a,b,c)")),
		MustNew("oai21", []string{"a1", "a2", "b"}, sp.MustParse("s(p(a1,a2),b)")),
		MustNew("aoi21", []string{"a1", "a2", "b"}, sp.MustParse("p(s(a1,a2),b)")),
		MustNew("aoi22", []string{"a1", "a2", "b1", "b2"}, sp.MustParse("p(s(a1,a2),s(b1,b2))")),
		MustNew("aoi221", []string{"a1", "a2", "b1", "b2", "c"}, sp.MustParse("p(s(a1,a2),s(b1,b2),c)")),
	}
	for _, g := range gates {
		want := map[string]bool{}
		for _, c := range g.AllConfigs() {
			want[c.ConfigKey()] = true
		}
		got := map[string]bool{}
		for _, c := range g.FindAllConfigs(nil) {
			got[c.ConfigKey()] = true
		}
		if len(got) != len(want) {
			t.Errorf("%s: pivot search %d configs, enumeration %d", g.Name, len(got), len(want))
			continue
		}
		for k := range want {
			if !got[k] {
				t.Errorf("%s: pivot search missed %s", g.Name, k)
			}
		}
	}
}

func TestFig5TraceGeneratesAllFourReorderings(t *testing.T) {
	// Fig. 5 of the paper: applying the exploration to the motivation gate
	// generates all four reorderings of Fig. 1(a).
	g := motivationGate(t)
	var trace []ExploreStep
	configs := g.FindAllConfigs(&trace)
	if len(configs) != 4 {
		t.Fatalf("exploration found %d configs, want 4", len(configs))
	}
	news := 0
	for _, s := range trace {
		if s.New {
			news++
		}
	}
	if news != 3 {
		t.Errorf("exploration discovered %d new configs by pivoting, want 3 (plus the start)", news)
	}
}

func TestInstancesMatchTable2Brackets(t *testing.T) {
	// oai21[A,B]: 2 instances of 2 configurations each (paper Sec. 5.1).
	g := motivationGate(t)
	inst := g.Instances()
	if len(inst) != 2 {
		t.Fatalf("oai21 instances = %d, want 2", len(inst))
	}
	for _, in := range inst {
		if len(in.Configs) != 2 {
			t.Errorf("instance %s has %d configs, want 2", in.Label, len(in.Configs))
		}
	}
	if inst[0].Label != "A" || inst[1].Label != "B" {
		t.Errorf("instance labels = %s,%s", inst[0].Label, inst[1].Label)
	}
}

func TestNodeStateMatchesHG(t *testing.T) {
	// For every input minterm and every node: if H=1 the node must read 1,
	// if G=1 it must read 0 (charge retention covers the rest).
	gates := []*Gate{
		motivationGate(t),
		MustNew("nand3", []string{"a", "b", "c"}, sp.MustParse("s(a,b,c)")),
		MustNew("aoi22", []string{"a1", "a2", "b1", "b2"}, sp.MustParse("p(s(a1,a2),s(b1,b2))")),
	}
	for _, g := range gates {
		gr, err := g.Graph()
		if err != nil {
			t.Fatal(err)
		}
		nodes := append(gr.InternalNodes(), Y)
		n := len(g.Inputs)
		for m := uint(0); m < 1<<n; m++ {
			state := gr.NodeStateAt(m, nil)
			for _, nk := range nodes {
				h, gg := gr.H(nk), gr.G(nk)
				if h.Eval(m) && !state[nk] {
					t.Errorf("%s minterm %d node %s: H=1 but state=0", g.Name, m, gr.NodeName(nk))
				}
				if gg.Eval(m) && state[nk] {
					t.Errorf("%s minterm %d node %s: G=1 but state=1", g.Name, m, gr.NodeName(nk))
				}
			}
		}
	}
}

func TestNodeStateChargeRetention(t *testing.T) {
	// nand2 with inputs a=1,b=0: internal node is isolated (a on top
	// conducts from y? no: PDN order s(a,b): y -a- n0 -b- vss; with a=1,
	// b=0: n0 connects to y which is pulled up → H_n0 = !  … check the
	// retention case instead: a=0,b=0 isolates n0 from both rails except
	// through a (off) and b (off): n0 keeps its previous value.
	g := MustNew("nand2", []string{"a", "b"}, sp.MustParse("s(a,b)"))
	gr, _ := g.Graph()
	n0 := gr.InternalNodes()[0]
	h, gg := gr.H(n0), gr.G(n0)
	const m = 0 // a=0, b=0
	if h.Eval(m) || gg.Eval(m) {
		t.Fatalf("expected n0 undriven at minterm 0: H=%v G=%v", h.Eval(m), gg.Eval(m))
	}
	prev := make([]bool, gr.NumNodes)
	prev[n0] = true
	state := gr.NodeStateAt(m, prev)
	if !state[n0] {
		t.Error("undriven node lost its charge")
	}
	state = gr.NodeStateAt(m, nil)
	if state[n0] {
		t.Error("undriven node with no history defaulted to 1")
	}
}

func TestBuildGraphRejectsBadInputs(t *testing.T) {
	if _, err := BuildGraph([]string{"a", "a"}, sp.MustParse("s(a,b)"), sp.MustParse("p(a,b)")); err == nil {
		t.Error("duplicate pin accepted")
	}
	if _, err := BuildGraph([]string{"a", "b"}, sp.MustParse("s(a,q)"), sp.MustParse("p(a,b)")); err == nil {
		t.Error("unknown pull-down input accepted")
	}
	if _, err := BuildGraph([]string{"a", "b", "c"}, sp.MustParse("s(a,b)"), sp.MustParse("p(a,b)")); err == nil {
		t.Error("missing input accepted")
	}
}

func TestDegree(t *testing.T) {
	g := MustNew("inv", []string{"a"}, sp.MustParse("a"))
	gr, _ := g.Graph()
	// Output touches one NMOS and one PMOS terminal.
	if d := gr.Degree(Y); d != 2 {
		t.Errorf("Degree(Y) = %d, want 2", d)
	}
	if d := gr.Degree(Vdd); d != 1 {
		t.Errorf("Degree(Vdd) = %d, want 1", d)
	}
}

func TestWithOrdering(t *testing.T) {
	g := motivationGate(t)
	flip, err := g.WithOrdering(sp.MustParse("s(b,p(a1,a2))"), g.PU)
	if err != nil {
		t.Fatal(err)
	}
	if flip.ConfigKey() == g.ConfigKey() {
		t.Error("reordered gate has same ConfigKey")
	}
	if _, err := g.WithOrdering(sp.MustParse("s(a1,a2)"), g.PU); err == nil {
		t.Error("different shape accepted")
	}
}

func TestInverterTrivial(t *testing.T) {
	g := MustNew("inv", []string{"a"}, sp.MustParse("a"))
	if g.CountConfigs() != 1 {
		t.Errorf("inverter configs = %d, want 1", g.CountConfigs())
	}
	if got := len(g.FindAllConfigs(nil)); got != 1 {
		t.Errorf("inverter pivot search = %d, want 1", got)
	}
	f, _ := g.Func()
	if !f.Equal(logic.Var(0, 1).Not()) {
		t.Error("inverter function wrong")
	}
}

func BenchmarkHGExtractionAOI222(b *testing.B) {
	g := MustNew("aoi222", []string{"a1", "a2", "b1", "b2", "c1", "c2"},
		sp.MustParse("p(s(a1,a2),s(b1,b2),s(c1,c2))"))
	gr, err := g.Graph()
	if err != nil {
		b.Fatal(err)
	}
	nodes := append(gr.InternalNodes(), Y)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, nk := range nodes {
			_ = gr.H(nk)
			_ = gr.G(nk)
		}
	}
}

func BenchmarkFindAllConfigsAOI221(b *testing.B) {
	g := MustNew("aoi221", []string{"a1", "a2", "b1", "b2", "c"},
		sp.MustParse("p(s(a1,a2),s(b1,b2),c)"))
	for i := 0; i < b.N; i++ {
		if got := len(g.FindAllConfigs(nil)); got != 24 {
			b.Fatalf("got %d configs", got)
		}
	}
}
