package gate

import (
	"math/rand"
	"testing"

	"repro/internal/sp"
)

func TestPropertyPivotSearchCompleteOnRandomGates(t *testing.T) {
	// [5]'s completeness theorem, checked empirically: the pivot search
	// discovers exactly the combinatorial configuration set for random
	// read-once gates.
	rng := rand.New(rand.NewSource(51))
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(4)
		pd := sp.RandomExpr(rng, n)
		g, err := New("rnd", pd.Inputs(), pd)
		if err != nil {
			t.Fatal(err)
		}
		if g.CountConfigs() > 60 {
			continue
		}
		want := map[string]bool{}
		for _, c := range g.AllConfigs() {
			want[c.ConfigKey()] = true
		}
		got := map[string]bool{}
		for _, c := range g.FindAllConfigs(nil) {
			got[c.ConfigKey()] = true
		}
		if len(got) != len(want) {
			t.Fatalf("gate %v: pivot %d vs combinatorial %d", g, len(got), len(want))
		}
		for k := range want {
			if !got[k] {
				t.Fatalf("gate %v: pivot search missed %s", g, k)
			}
		}
	}
}

func TestPropertyInstancesPartitionConfigs(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(4)
		pd := sp.RandomExpr(rng, n)
		g, err := New("rnd", pd.Inputs(), pd)
		if err != nil {
			t.Fatal(err)
		}
		if g.CountConfigs() > 60 {
			continue
		}
		seen := map[string]int{}
		total := 0
		for _, inst := range g.Instances() {
			for _, cfg := range inst.Configs {
				seen[cfg.ConfigKey()]++
				total++
			}
		}
		if total != g.CountConfigs() {
			t.Fatalf("gate %v: instances cover %d of %d configs", g, total, g.CountConfigs())
		}
		for k, c := range seen {
			if c != 1 {
				t.Fatalf("gate %v: config %s appears in %d instances", g, k, c)
			}
		}
	}
}

func TestInstancesExtremes(t *testing.T) {
	// Fully symmetric chain: all orderings reachable by rewiring → one
	// instance holding every configuration.
	nand4 := MustNew("nand4", []string{"a", "b", "c", "d"}, sp.MustParse("s(a,b,c,d)"))
	inst := nand4.Instances()
	if len(inst) != 1 || len(inst[0].Configs) != 24 {
		t.Errorf("nand4 instances = %d with %d configs, want 1 with 24", len(inst), len(inst[0].Configs))
	}
	// aoi222: the block and pair symmetries fold all 48 configurations
	// into a single layout.
	aoi222 := MustNew("aoi222", []string{"a1", "a2", "b1", "b2", "c1", "c2"},
		sp.MustParse("p(s(a1,a2),s(b1,b2),s(c1,c2))"))
	inst = aoi222.Instances()
	if len(inst) != 1 || len(inst[0].Configs) != 48 {
		t.Errorf("aoi222 instances = %d, want 1 with all 48 configs", len(inst))
	}
}

func TestPropertyGraphNodeCounts(t *testing.T) {
	// Internal node count of the graph equals the sum over both networks
	// of their series boundaries, for random gates.
	rng := rand.New(rand.NewSource(53))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(6)
		pd := sp.RandomExpr(rng, n)
		g, err := New("rnd", pd.Inputs(), pd)
		if err != nil {
			t.Fatal(err)
		}
		gr, err := g.Graph()
		if err != nil {
			t.Fatal(err)
		}
		want := g.PD.NumInternalNodes() + g.PU.NumInternalNodes()
		if gr.NumInternal() != want {
			t.Fatalf("gate %v: %d internal nodes, want %d", g, gr.NumInternal(), want)
		}
		if len(gr.Edges) != 2*n {
			t.Fatalf("gate %v: %d edges, want %d", g, len(gr.Edges), 2*n)
		}
	}
}
