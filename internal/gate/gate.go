package gate

import (
	"fmt"
	"sort"

	"repro/internal/logic"
	"repro/internal/sp"
)

// Gate is one configuration of a static CMOS gate: an ordered pull-down
// network and an ordered pull-up network over the same input pins. The
// unordered pair (the "shape") identifies the cell; the ordered pair
// identifies a transistor arrangement (one column of the paper's Fig. 1).
type Gate struct {
	Name   string   // cell name, e.g. "oai21"
	Inputs []string // pin order; functions are over these variables
	PD     *sp.Expr // pull-down (NMOS), serialized output → ground
	PU     *sp.Expr // pull-up (PMOS), serialized power → output
}

// New builds a gate from its pull-down network, deriving the canonical
// complementary pull-up as the dual.
func New(name string, inputs []string, pd *sp.Expr) (*Gate, error) {
	return NewWithPU(name, inputs, pd, pd.Dual())
}

// NewWithPU builds a gate with an explicitly ordered pull-up network;
// the pull-up must be the series-parallel dual of the pull-down up to
// ordering (checked via the complementarity of the conduction functions).
func NewWithPU(name string, inputs []string, pd, pu *sp.Expr) (*Gate, error) {
	g := &Gate{Name: name, Inputs: append([]string(nil), inputs...), PD: pd.Flatten(), PU: pu.Flatten()}
	gr, err := g.Graph()
	if err != nil {
		return nil, err
	}
	if err := gr.CheckComplementary(); err != nil {
		return nil, fmt.Errorf("gate %s: %w", name, err)
	}
	return g, nil
}

// MustNew is New that panics on error, for compile-time cell tables.
func MustNew(name string, inputs []string, pd *sp.Expr) *Gate {
	g, err := New(name, inputs, pd)
	if err != nil {
		panic(err)
	}
	return g
}

// Graph builds the transistor graph of this configuration.
func (g *Gate) Graph() (*Graph, error) {
	return BuildGraph(g.Inputs, g.PD, g.PU)
}

// Func returns the gate's boolean function over its input pin order.
func (g *Gate) Func() (logic.Func, error) {
	vars := make(map[string]int, len(g.Inputs))
	for i, in := range g.Inputs {
		vars[in] = i
	}
	pd, err := g.PD.Conduction(vars, len(g.Inputs), false)
	if err != nil {
		return logic.Func{}, err
	}
	return pd.Not(), nil
}

// ConfigKey identifies this transistor arrangement; all orderings of the
// same cell share a ShapeKey but differ in ConfigKey.
func (g *Gate) ConfigKey() string {
	return g.PD.ConfigKey() + "/" + g.PU.ConfigKey()
}

// ShapeKey identifies the cell independent of ordering.
func (g *Gate) ShapeKey() string {
	return g.PD.ShapeKey() + "/" + g.PU.ShapeKey()
}

// NumTransistors returns the total transistor count (both networks).
func (g *Gate) NumTransistors() int {
	return g.PD.NumTransistors() + g.PU.NumTransistors()
}

// CountConfigs returns the number of distinct configurations of the gate:
// the product of the ordering counts of the two networks (they reorder
// independently). This is the #C column of the paper's Table 2.
func (g *Gate) CountConfigs() int {
	return sp.CountOrderings(g.PD) * sp.CountOrderings(g.PU)
}

// AllConfigs enumerates every distinct configuration, sorted by ConfigKey.
// The result is memoized per configuration and shared across callers (all
// instances of a cell in a circuit enumerate the orbit once); treat the
// returned slice and its gates as read-only.
func (g *Gate) AllConfigs() []*Gate {
	return orbits.allConfigs(g)
}

// enumerateConfigs performs the actual enumeration behind AllConfigs.
func (g *Gate) enumerateConfigs() []*Gate {
	var out []*Gate
	for _, pd := range sp.Orderings(g.PD) {
		for _, pu := range sp.Orderings(g.PU) {
			out = append(out, &Gate{Name: g.Name, Inputs: g.Inputs, PD: pd, PU: pu})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ConfigKey() < out[j].ConfigKey() })
	return out
}

// ExploreStep records one pivot application for tracing (Fig. 5).
type ExploreStep struct {
	PivotNode int    // global internal-node index (pull-down nodes first)
	Config    string // ConfigKey reached
	New       bool
}

// FindAllConfigs runs the paper's exhaustive exploration (Fig. 4) on the
// whole gate: internal nodes of the pull-down network are indexed first,
// then the pull-up's. Pivoting on a node transposes the two series
// sub-networks adjacent to it. The visited set is keyed by ConfigKey.
// Tests assert the result equals AllConfigs ([5] proves completeness).
func (g *Gate) FindAllConfigs(trace *[]ExploreStep) []*Gate {
	pdn := g.PD.NumInternalNodes()
	pun := g.PU.NumInternalNodes()
	total := pdn + pun
	pivot := func(cur *Gate, node int) *Gate {
		if node < pdn {
			return &Gate{Name: cur.Name, Inputs: cur.Inputs, PD: sp.Pivot(cur.PD, node), PU: cur.PU}
		}
		return &Gate{Name: cur.Name, Inputs: cur.Inputs, PD: cur.PD, PU: sp.Pivot(cur.PU, node-pdn)}
	}
	start := &Gate{Name: g.Name, Inputs: g.Inputs, PD: g.PD.Flatten(), PU: g.PU.Flatten()}
	visited := map[string]bool{start.ConfigKey(): true}
	order := []*Gate{start}
	var search func(cur *Gate, node int)
	search = func(cur *Gate, node int) {
		next := pivot(cur, node)
		key := next.ConfigKey()
		isNew := !visited[key]
		if trace != nil {
			*trace = append(*trace, ExploreStep{PivotNode: node, Config: key, New: isNew})
		}
		if !isNew {
			return
		}
		visited[key] = true
		order = append(order, next)
		for i := 0; i < total; i++ {
			if i != node {
				search(next, i)
			}
		}
	}
	for i := 0; i < total; i++ {
		search(start, i)
	}
	return order
}

// Instance is one physical cell layout: the set of configurations
// reachable from each other purely by rewiring symmetric inputs
// (paper Sec. 5.1: oai21[A] covers configurations (A) and (B)).
type Instance struct {
	Label   string // "A", "B", … in deterministic order
	Configs []*Gate
}

// Instances partitions AllConfigs into orbits under the input
// automorphisms of the gate shape. The number of instances is the bracket
// count of Table 2 (aoi211[A,B,C] → 3 instances). Like AllConfigs, the
// result is memoized per configuration; treat it as read-only.
func (g *Gate) Instances() []Instance {
	return orbits.allInstances(g)
}

// partitionInstances performs the actual orbit partition behind Instances.
func (g *Gate) partitionInstances() []Instance {
	configs := g.AllConfigs()
	autos := sp.Automorphisms(g.PD) // the PU shape is the dual: same symmetries
	idx := make(map[string]int, len(configs))
	for i, c := range configs {
		idx[c.ConfigKey()] = i
	}
	parent := make([]int, len(configs))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for i, c := range configs {
		for _, m := range autos {
			img := &Gate{Name: c.Name, Inputs: c.Inputs, PD: c.PD.RenameInputs(m), PU: c.PU.RenameInputs(m)}
			j, ok := idx[img.ConfigKey()]
			if !ok {
				panic("gate: automorphism image is not a configuration")
			}
			ri, rj := find(i), find(j)
			if ri != rj {
				parent[rj] = ri
			}
		}
	}
	groups := map[int][]*Gate{}
	for i, c := range configs {
		r := find(i)
		groups[r] = append(groups[r], c)
	}
	var orbits [][]*Gate
	for _, grp := range groups {
		orbits = append(orbits, grp)
	}
	sort.Slice(orbits, func(i, j int) bool { return orbits[i][0].ConfigKey() < orbits[j][0].ConfigKey() })
	out := make([]Instance, len(orbits))
	for i, grp := range orbits {
		out[i] = Instance{Label: instanceLabel(i), Configs: grp}
	}
	return out
}

func instanceLabel(i int) string {
	const alphabet = "ABCDEFGHIJKLMNOPQRSTUVWXYZ"
	if i < len(alphabet) {
		return alphabet[i : i+1]
	}
	return fmt.Sprintf("Z%d", i)
}

// WithOrdering returns the configuration of this gate with the given
// ordered networks; the shapes must match.
func (g *Gate) WithOrdering(pd, pu *sp.Expr) (*Gate, error) {
	n := &Gate{Name: g.Name, Inputs: g.Inputs, PD: pd.Flatten(), PU: pu.Flatten()}
	if n.ShapeKey() != g.ShapeKey() {
		return nil, fmt.Errorf("gate %s: ordering has different shape %s", g.Name, n.ShapeKey())
	}
	return n, nil
}

// String identifies the gate and its configuration.
func (g *Gate) String() string {
	return fmt.Sprintf("%s{pd=%s pu=%s}", g.Name, g.PD, g.PU)
}
