package gate

import (
	"sync"
	"testing"

	"repro/internal/sp"
)

// TestAllConfigsMemoized asserts the cache contract: repeated calls —
// from any member of the enumeration — return the same canonical slice
// without re-enumerating.
func TestAllConfigsMemoized(t *testing.T) {
	g := MustNew("cc_nand3", []string{"a", "b", "c"}, sp.S(sp.L("a"), sp.L("b"), sp.L("c")))
	first := g.AllConfigs()
	if len(first) == 0 {
		t.Fatal("no configurations")
	}
	if again := g.AllConfigs(); &again[0] != &first[0] {
		t.Error("second AllConfigs call re-enumerated instead of hitting the cache")
	}
	// Any member of the orbit shares the entry.
	for _, cfg := range first {
		if via := cfg.AllConfigs(); &via[0] != &first[0] {
			t.Fatalf("AllConfigs via member %s missed the shared cache entry", cfg.ConfigKey())
		}
	}
}

// TestInstancesMemoized is the same contract for the orbit partition.
func TestInstancesMemoized(t *testing.T) {
	g := MustNew("cc_aoi22", []string{"a", "b", "c", "d"},
		sp.P(sp.S(sp.L("a"), sp.L("b")), sp.S(sp.L("c"), sp.L("d"))))
	first := g.Instances()
	if len(first) == 0 {
		t.Fatal("no instances")
	}
	if again := g.Instances(); &again[0] != &first[0] {
		t.Error("second Instances call re-partitioned instead of hitting the cache")
	}
	for _, inst := range first {
		for _, cfg := range inst.Configs {
			if via := cfg.Instances(); &via[0] != &first[0] {
				t.Fatalf("Instances via member %s missed the shared cache entry", cfg.ConfigKey())
			}
		}
	}
}

// TestConfigCacheConcurrent hammers the cache from many goroutines (run
// with -race): all callers must observe one canonical enumeration.
func TestConfigCacheConcurrent(t *testing.T) {
	g := MustNew("cc_oai211", []string{"a", "b", "c", "d"},
		sp.S(sp.P(sp.L("a"), sp.L("b")), sp.L("c"), sp.L("d")))
	const goroutines = 16
	results := make([][]*Gate, goroutines)
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = g.AllConfigs()
			g.Instances()
		}(i)
	}
	wg.Wait()
	for i := 1; i < goroutines; i++ {
		if len(results[i]) != len(results[0]) {
			t.Fatalf("goroutine %d saw %d configs, goroutine 0 saw %d", i, len(results[i]), len(results[0]))
		}
	}
}

// TestConfigCacheDistinguishesCells guards the key: two cells with
// identical networks but different names must not share entries (the
// enumerated gates carry the cell name).
func TestConfigCacheDistinguishesCells(t *testing.T) {
	a := MustNew("cc_keyed_a", []string{"x", "y"}, sp.S(sp.L("x"), sp.L("y")))
	b := MustNew("cc_keyed_b", []string{"x", "y"}, sp.S(sp.L("x"), sp.L("y")))
	for _, cfg := range a.AllConfigs() {
		if cfg.Name != "cc_keyed_a" {
			t.Fatalf("config of cell a named %q", cfg.Name)
		}
	}
	for _, cfg := range b.AllConfigs() {
		if cfg.Name != "cc_keyed_b" {
			t.Fatalf("config of cell b named %q", cfg.Name)
		}
	}
}
