package gate

import (
	"strings"
	"sync"
)

// orbitCache memoizes AllConfigs and Instances results per configuration.
// Enumerating a cell's configurations (Orderings × Orderings, sorted) and
// partitioning them into layout orbits (automorphism union-find) depend
// only on the configuration identity, never on circuit context, so a
// circuit with hundreds of instances of one cell enumerates the orbit
// exactly once. The cache is safe for concurrent use — the parallel
// optimizer's candidate-search workers hit it from many goroutines — and
// unbounded: the library contributes at most a few hundred distinct
// configurations in total.
//
// Every member of an enumeration shares the same result (the orderings of
// any configuration of a shape are the same sorted set), so a computed
// result is stored under every member's key: asking any configuration of
// nand3 for its orbit after any other configuration asked is a pure map
// hit.
// A pointer-keyed front (byPtr*) sits before the string-keyed maps:
// gates are immutable, so a *Gate that hit the front resolves its orbit
// with a single lock-free map load, no key serialization. Only canonical
// enumeration members are registered in the front — a bounded set, one
// entry per distinct configuration — so arbitrary caller-constructed
// gates (e.g. one per parsed netlist instance) never pin memory here;
// they pay the string key and stay eligible for collection. The
// optimizer's steady state is pointer-hits throughout: after the first
// committed move every circuit cell is a canonical orbit member.
type orbitCache struct {
	byPtrConfigs   sync.Map // *Gate → []*Gate
	byPtrInstances sync.Map // *Gate → []Instance

	mu        sync.RWMutex
	configs   map[string][]*Gate
	instances map[string][]Instance
}

var orbits = &orbitCache{
	configs:   map[string][]*Gate{},
	instances: map[string][]Instance{},
}

// configCacheKey identifies a configuration for memoization: the cell
// name and pin order disambiguate distinct cells whose networks happen to
// serialize identically.
func configCacheKey(g *Gate) string {
	return g.Name + "|" + strings.Join(g.Inputs, ",") + "|" + g.ConfigKey()
}

func (oc *orbitCache) allConfigs(g *Gate) []*Gate {
	if cached, ok := oc.byPtrConfigs.Load(g); ok {
		return cached.([]*Gate)
	}
	key := configCacheKey(g)
	oc.mu.RLock()
	cached, ok := oc.configs[key]
	oc.mu.RUnlock()
	if ok {
		return cached
	}
	out := g.enumerateConfigs()
	oc.mu.Lock()
	if prior, ok := oc.configs[key]; ok {
		out = prior // a concurrent enumeration won; keep one canonical slice
	} else {
		oc.configs[key] = out
		for _, cfg := range out {
			oc.configs[configCacheKey(cfg)] = out
		}
	}
	oc.mu.Unlock()
	for _, cfg := range out {
		oc.byPtrConfigs.Store(cfg, out)
	}
	return out
}

func (oc *orbitCache) allInstances(g *Gate) []Instance {
	if cached, ok := oc.byPtrInstances.Load(g); ok {
		return cached.([]Instance)
	}
	key := configCacheKey(g)
	oc.mu.RLock()
	cached, ok := oc.instances[key]
	oc.mu.RUnlock()
	if ok {
		return cached
	}
	out := g.partitionInstances()
	oc.mu.Lock()
	if prior, ok := oc.instances[key]; ok {
		out = prior
	} else {
		oc.instances[key] = out
		for _, inst := range out {
			for _, cfg := range inst.Configs {
				oc.instances[configCacheKey(cfg)] = out
			}
		}
	}
	oc.mu.Unlock()
	for _, inst := range out {
		for _, cfg := range inst.Configs {
			oc.byPtrInstances.Store(cfg, out)
		}
	}
	return out
}
