package repro_test

import (
	"math/rand"
	"strings"
	"testing"

	"repro"
	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/expt"
	"repro/internal/gate"
	"repro/internal/netlist"
	"repro/internal/reorder"
	"repro/internal/sim"
	"repro/internal/stoch"
)

// TestEndToEndAllEmbeddedBenchmarks runs the complete flow — load, map,
// optimize best and worst, verify equivalence (formally when the input
// count allows), round-trip through GNL — on every hand-written classic.
func TestEndToEndAllEmbeddedBenchmarks(t *testing.T) {
	lib := repro.DefaultLibrary()
	for _, name := range repro.EmbeddedBenchmarks() {
		name := name
		t.Run(name, func(t *testing.T) {
			c, err := repro.LoadBenchmark(name, lib)
			if err != nil {
				t.Fatal(err)
			}
			opt := expt.DefaultOptions()
			pi := expt.InputStats(c, expt.ScenarioA, opt)
			best, worst, err := repro.BestAndWorst(c, pi, repro.DefaultOptimizeOptions())
			if err != nil {
				t.Fatal(err)
			}
			if best.PowerAfter > worst.PowerAfter {
				t.Errorf("best %g above worst %g", best.PowerAfter, worst.PowerAfter)
			}
			for _, rep := range []*reorder.Report{best, worst} {
				var ok bool
				var witness string
				if len(c.Inputs) <= 14 {
					ok, witness, err = circuit.Equivalent(c, rep.Circuit)
				} else {
					ok, witness, err = circuit.EquivalentRandom(c, rep.Circuit, 256,
						rand.New(rand.NewSource(9)))
				}
				if err != nil {
					t.Fatal(err)
				}
				if !ok {
					t.Fatalf("%s: reordering broke the function: %s", name, witness)
				}
			}
			// GNL round trip of the optimized circuit.
			var buf strings.Builder
			if err := netlist.WriteGNL(&buf, best.Circuit); err != nil {
				t.Fatal(err)
			}
			back, err := netlist.ReadGNL(strings.NewReader(buf.String()), lib)
			if err != nil {
				t.Fatalf("%s: GNL reparse: %v", name, err)
			}
			if len(back.Gates) != len(best.Circuit.Gates) {
				t.Fatalf("%s: GNL round trip changed gate count", name)
			}
		})
	}
}

// TestScenarioBClockedCrossCheck runs the motivation-gate comparison
// under scenario-B clocked stimulus: the model-chosen best configuration
// must also measure no worse than the worst one when all inputs switch on
// clock edges.
func TestScenarioBClockedCrossCheck(t *testing.T) {
	g := expt.MotivationGate()
	prm := core.DefaultParams()
	const period = 100e-9
	const cycles = 4000
	in := []stoch.Signal{
		{P: 0.5, D: 0.5 / period},
		{P: 0.5, D: 0.5 / period},
		{P: 0.5, D: 0.5 / period},
	}
	best, err := core.BestConfig(g, in, prm.OutputLoad(1), prm)
	if err != nil {
		t.Fatal(err)
	}
	worst, err := core.WorstConfig(g, in, prm.OutputLoad(1), prm)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(cfg *gate.Gate) *circuit.Circuit {
		return &circuit.Circuit{
			Name:    "one",
			Inputs:  []string{"a1", "a2", "b"},
			Outputs: []string{"y"},
			Gates:   []*circuit.Instance{{Name: "u1", Cell: cfg, Pins: []string{"a1", "a2", "b"}, Out: "y"}},
		}
	}
	perCycle := map[string]stoch.Signal{
		"a1": {P: 0.5, D: 0.5}, "a2": {P: 0.5, D: 0.5}, "b": {P: 0.5, D: 0.5},
	}
	rng := rand.New(rand.NewSource(21))
	waves, err := sim.GenerateClockedWaveforms([]string{"a1", "a2", "b"}, perCycle, cycles, period, rng)
	if err != nil {
		t.Fatal(err)
	}
	red, rb, rw, err := sim.MeasureReduction(mk(best.Gate), mk(worst.Gate), waves, cycles*period, sim.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if rb.Power > rw.Power*(1+1e-9) {
		t.Errorf("clocked stimulus inverted the ordering: best %g vs worst %g", rb.Power, rw.Power)
	}
	t.Logf("clocked best-vs-worst reduction: %.1f%%", 100*red)
}
