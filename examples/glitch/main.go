// Useless-transition study: the paper's introduction motivates
// activity-aware optimization with the observation that "the power
// consumption of useless signal transitions (those that do not contribute
// to the final result) accounts for a large fraction of the overall
// dynamic power". This example measures that fraction on the ripple-carry
// adder with the switch-level simulator — comparing real (unit-delay)
// activity against the ideal zero-delay activity — and dumps a VCD
// waveform for inspection.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"sort"

	"repro"
	"repro/internal/sim"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("glitch: ")

	lib := repro.DefaultLibrary()
	c, err := repro.LoadBenchmark("rca8", lib)
	if err != nil {
		log.Fatal(err)
	}
	// Latched inputs at a 10 MHz clock (scenario B): all inputs switch on
	// clock edges, so reconvergent path skew inside the adder creates the
	// glitches the paper's introduction describes.
	stats := repro.UniformInputs(c, 0.5, 0.5) // 0.5 transitions per cycle
	const period = 100e-9
	const cycles = 2000
	const horizon = cycles * period
	rng := rand.New(rand.NewSource(8))
	waves, err := sim.GenerateClockedWaveforms(c.Inputs, stats, cycles, period, rng)
	if err != nil {
		log.Fatal(err)
	}

	rep, err := sim.Glitches(c, waves, horizon, sim.DefaultParams())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("circuit %s over %.0g s of stimulus:\n", c.Name, horizon)
	fmt.Printf("  gate-output transitions:  %d\n", rep.TotalGateTrans)
	fmt.Printf("  useless (glitch) portion: %d (%.1f%%)\n", rep.Useless, 100*rep.Fraction)

	// The glitchiest nets — in a ripple-carry adder the high-order sum
	// bits, fed by reconvergent carry paths, dominate.
	type netGlitch struct {
		net   string
		extra int
	}
	var worst []netGlitch
	for net, simCount := range rep.Simulated {
		if extra := simCount - rep.Functional[net]; extra > 0 {
			worst = append(worst, netGlitch{net, extra})
		}
	}
	sort.Slice(worst, func(i, j int) bool {
		if worst[i].extra != worst[j].extra {
			return worst[i].extra > worst[j].extra
		}
		return worst[i].net < worst[j].net
	})
	fmt.Println("\nglitchiest nets:")
	for i, w := range worst {
		if i == 8 {
			break
		}
		fmt.Printf("  %-8s +%d transitions beyond functional need\n", w.net, w.extra)
	}

	// Dump a short waveform window for a waveform viewer.
	shortWaves, err := sim.GenerateClockedWaveforms(c.Inputs, stats, 100, period, rand.New(rand.NewSource(8)))
	if err != nil {
		log.Fatal(err)
	}
	_, tr, err := sim.RunTrace(c, shortWaves, 100*period, sim.DefaultParams())
	if err != nil {
		log.Fatal(err)
	}
	f, err := os.Create("rca8.vcd")
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := tr.WriteVCD(f, c.Name); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nwrote rca8.vcd (20 µs window) for waveform inspection")
}
