// Table 1 style analysis of a user-defined complex gate: define a cell by
// its pull-down network, enumerate every transistor reordering, and sweep
// the activity ratio between two inputs to see where the best
// configuration flips — the effect the paper's motivation table
// demonstrates on y = ¬((a1+a2)·b).
//
// The gate here is y = ¬(a1·a2·a3 + b) (an AOI31), whose three-transistor
// stack offers 12 configurations.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/gate"
	"repro/internal/sp"
	"repro/internal/stoch"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("customgate: ")

	g, err := gate.New("aoi31", []string{"a1", "a2", "a3", "b"},
		sp.MustParse("p(s(a1,a2,a3),b)"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("gate %s: %d transistors, %d configurations, %d layout instances\n",
		g.Name, g.NumTransistors(), g.CountConfigs(), len(g.Instances()))

	prm := core.DefaultParams()
	load := prm.OutputLoad(1)

	// Sweep: a1's activity rises from quiet to hot while a2, a3 and b stay
	// fixed. Report the best configuration and the best-vs-worst spread at
	// each point.
	fmt.Printf("\n%-12s %-34s %-10s\n", "D(a1)", "best configuration (pd)", "spread")
	var prevBest string
	for _, d1 := range []float64{1e3, 1e4, 1e5, 3e5, 1e6, 3e6} {
		in := []stoch.Signal{
			{P: 0.5, D: d1},
			{P: 0.5, D: 1e5},
			{P: 0.5, D: 2e5},
			{P: 0.5, D: 5e4},
		}
		best, err := core.BestConfig(g, in, load, prm)
		if err != nil {
			log.Fatal(err)
		}
		worst, err := core.WorstConfig(g, in, load, prm)
		if err != nil {
			log.Fatal(err)
		}
		spread := 1 - best.Power/worst.Power
		marker := ""
		if key := best.Gate.PD.String(); key != prevBest {
			if prevBest != "" {
				marker = "  <- flip"
			}
			prevBest = key
		}
		fmt.Printf("%-12.0g %-34s %-10s%s\n", d1, best.Gate.PD,
			fmt.Sprintf("%.1f%%", 100*spread), marker)
	}

	// Show the per-node breakdown for the hottest point: where does the
	// power actually go?
	in := []stoch.Signal{
		{P: 0.5, D: 3e6}, {P: 0.5, D: 1e5}, {P: 0.5, D: 2e5}, {P: 0.5, D: 5e4},
	}
	best, err := core.BestConfig(g, in, load, prm)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nper-node analysis of the best configuration at D(a1)=3e6:\n")
	fmt.Printf("  %-6s %-10s %-10s %-12s %s\n", "node", "P(node)", "C (fF)", "T (trans/s)", "power (W)")
	for _, n := range best.Nodes {
		fmt.Printf("  %-6s %-10.3f %-10.2f %-12.3g %.3g\n",
			n.Name, n.P, n.Cap*1e15, n.T, n.Power)
	}
	fmt.Printf("  total: %.3g W\n", best.Power)
}
