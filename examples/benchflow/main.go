// Full benchmark flow on one circuit, end to end: load a benchmark
// netlist, draw scenario-A input statistics, optimize for best and worst
// power, verify functional equivalence, measure both with the
// switch-level simulator under identical stimulus, and compare the delay
// of the optimized circuit against the original mapping — exactly what
// one row of the paper's Table 3 reports.
//
// Usage: benchflow [benchmark]   (default cm138a)
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"

	"repro"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchflow: ")

	name := "cm138a"
	if len(os.Args) > 1 {
		name = os.Args[1]
	}
	lib := repro.DefaultLibrary()
	c, err := repro.LoadBenchmark(name, lib)
	if err != nil {
		log.Fatal(err)
	}
	stats := repro.ScenarioInputs(c, "A", 1996)
	fmt.Printf("benchmark %s: %d gates, %d inputs, %d outputs\n",
		name, len(c.Gates), len(c.Inputs), len(c.Outputs))

	best, worst, err := repro.BestAndWorst(c, stats, repro.DefaultOptimizeOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("model power: best %.4g W, worst %.4g W (reduction %.1f%%)\n",
		best.PowerAfter, worst.PowerAfter,
		100*(worst.PowerAfter-best.PowerAfter)/worst.PowerAfter)

	// Functional equivalence spot check on random vectors.
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 128; trial++ {
		in := map[string]bool{}
		for _, pi := range c.Inputs {
			in[pi] = rng.Intn(2) == 1
		}
		v0, err := c.Eval(in)
		if err != nil {
			log.Fatal(err)
		}
		v1, err := best.Circuit.Eval(in)
		if err != nil {
			log.Fatal(err)
		}
		for _, o := range c.Outputs {
			if v0[o] != v1[o] {
				log.Fatalf("reordering changed output %s", o)
			}
		}
	}
	fmt.Println("functional equivalence: 128 random vectors OK")

	// Switch-level cross-check under one shared stimulus.
	const horizon = 5e-4
	rb, err := repro.Simulate(best.Circuit, stats, horizon, 11, repro.DefaultSimParams())
	if err != nil {
		log.Fatal(err)
	}
	rw, err := repro.Simulate(worst.Circuit, stats, horizon, 11, repro.DefaultSimParams())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("switch-level: best %.4g W, worst %.4g W (reduction %.1f%%)\n",
		rb.Power, rw.Power, 100*(rw.Power-rb.Power)/rw.Power)

	// Delay comparison (column D of Table 3).
	d0, err := repro.CircuitDelay(c, repro.DefaultDelayParams())
	if err != nil {
		log.Fatal(err)
	}
	d1, err := repro.CircuitDelay(best.Circuit, repro.DefaultDelayParams())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("critical path: %.3g s -> %.3g s (%+.1f%%)\n",
		d0.Delay, d1.Delay, 100*(d1.Delay-d0.Delay)/d0.Delay)
}
