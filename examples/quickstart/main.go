// Quickstart: parse a tiny BLIF netlist, map it onto the Table 2 library,
// estimate its power with the paper's internal-node model, optimize it by
// transistor reordering, and print the before/after comparison.
package main

import (
	"fmt"
	"log"
	"os"
	"strings"

	"repro"
)

const src = `.model demo
.inputs a b c d
.outputs y
.names a b t1
11 0
.names t1 c t2
00 1
.names t2 d y
11 0
.end
`

func main() {
	log.SetFlags(0)
	log.SetPrefix("quickstart: ")

	nw, err := repro.ParseBLIF(strings.NewReader(src))
	if err != nil {
		log.Fatal(err)
	}
	lib := repro.DefaultLibrary()
	c, err := repro.MapNetwork(nw, lib)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mapped %q onto the library: %d gates\n", c.Name, len(c.Gates))

	// Every input idles at P=0.5; input d is ten times more active.
	stats := repro.UniformInputs(c, 0.5, 1e5)
	stats["d"] = repro.Signal{P: 0.5, D: 1e6}

	before, err := repro.EstimatePower(c, stats)
	if err != nil {
		log.Fatal(err)
	}
	rep, err := repro.Optimize(c, stats, repro.DefaultOptimizeOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("model power before: %.4g W\n", before.Power)
	fmt.Printf("model power after:  %.4g W (%d gates reconfigured, %.1f%% saved)\n",
		rep.PowerAfter, rep.GatesChanged, 100*rep.Reduction())

	// The optimized circuit round-trips through the GNL format with its
	// chosen transistor orderings.
	fmt.Println("\noptimized netlist:")
	if err := repro.WriteGNL(os.Stdout, rep.Circuit); err != nil {
		log.Fatal(err)
	}
}
