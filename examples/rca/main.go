// The Section 1.1 motivation study: in a ripple-carry adder all inputs
// share the same equilibrium probability, yet the propagated carries are
// far more active than the operand bits — so a power optimizer must look
// at transition densities, not probabilities. This example profiles the
// carry chain of an 8-bit adder, optimizes the adder, and cross-checks the
// savings with the switch-level simulator.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("rca: ")

	lib := repro.DefaultLibrary()
	c, err := repro.LoadBenchmark("rca8", lib)
	if err != nil {
		log.Fatal(err)
	}
	stats := repro.UniformInputs(c, 0.5, 1e5)

	// 1. Profile: model statistics of the carry nets.
	a, err := repro.EstimatePower(c, stats)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("carry-chain profile (operands: P=0.5, D=1e5 trans/s):")
	fmt.Printf("  %-6s %-8s %s\n", "net", "P", "D (trans/s)")
	for i := 1; i < 8; i++ {
		net := fmt.Sprintf("c%d", i)
		s, ok := a.NetStats[net]
		if !ok {
			continue
		}
		fmt.Printf("  %-6s %-8.3f %.3g\n", net, s.P, s.D)
	}
	if s, ok := a.NetStats["cout"]; ok {
		fmt.Printf("  %-6s %-8.3f %.3g\n", "cout", s.P, s.D)
	}

	// 2. Optimize and report.
	rep, err := repro.Optimize(c, stats, repro.DefaultOptimizeOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmodel power: %.4g W -> %.4g W (%.1f%% reduction, %d/%d gates reconfigured)\n",
		rep.PowerBefore, rep.PowerAfter, 100*rep.Reduction(), rep.GatesChanged, len(c.Gates))

	// 3. Cross-check with the switch-level simulator under identical
	// exponential stimulus: best versus worst reordering.
	best, worst, err := repro.BestAndWorst(c, stats, repro.DefaultOptimizeOptions())
	if err != nil {
		log.Fatal(err)
	}
	const horizon = 5e-4
	const seed = 42
	rb, err := repro.Simulate(best.Circuit, stats, horizon, seed, repro.DefaultSimParams())
	if err != nil {
		log.Fatal(err)
	}
	rw, err := repro.Simulate(worst.Circuit, stats, horizon, seed, repro.DefaultSimParams())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nswitch-level check over %.0g s of stimulus:\n", horizon)
	fmt.Printf("  best reordering:  %.4g W\n", rb.Power)
	fmt.Printf("  worst reordering: %.4g W\n", rw.Power)
	fmt.Printf("  measured reduction: %.1f%%\n", 100*(rw.Power-rb.Power)/rw.Power)
}
